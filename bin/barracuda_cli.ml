(* The barracuda command-line tool.

     barracuda check FILE.ptx [--blocks N] [--tpb N] ...   race-check a kernel
     barracuda profile FILE.ptx [--parallel]               per-stage telemetry
     barracuda instrument FILE.ptx [--no-prune]            show rewritten PTX
     barracuda analyze FILE.ptx [--json]                    static race verdicts
     barracuda repair FILE.ptx [--json] [--out DIR]         propose a minimal fix
     barracuda suite [--json]                               run the 66-program suite
     barracuda litmus [--runs N]                            fence litmus tests
     barracuda table1                                       workload summary
     barracuda serve [--socket PATH] [--workers N]          race-checking daemon
     barracuda submit FILE [--kind check|predict]           send a job to the daemon
     barracuda stream FILE --trace REC [--chunk N]          stream a recording to the daemon
     barracuda svc-status [--prometheus]                    query the daemon

   Exit codes: 0 = clean, 1 = race found (or an I/O error), 2 = bad
   input — argument specs, PTX/trace parse errors, ill-formed kernels. *)

open Cmdliner

(* Every command body runs under this guard: user-input mistakes that
   used to escape as an OCaml backtrace become a one-line error with a
   usage hint and exit code 2, distinct from exit 1 (race found / I/O
   error). *)
let guard f =
  try f () with
  | Failure msg ->
      Format.eprintf "barracuda: %s@." msg;
      Format.eprintf
        "hint: argument specs are alloc:BYTES, int:V or a bare integer; see \
         --help.@.";
      2
  | Ptx.Parser.Error { line; message } ->
      Format.eprintf "barracuda: PTX parse error at line %d: %s@." line message;
      Format.eprintf "hint: the accepted PTX subset is described in README.md.@.";
      2
  | Gtrace.Serialize.Parse_error { line; message } ->
      Format.eprintf "barracuda: trace parse error at line %d: %s@." line
        message;
      Format.eprintf
        "hint: traces come from barracuda check --dump-trace FILE.@.";
      2
  | Invalid_argument msg ->
      Format.eprintf "barracuda: invalid input: %s@." msg;
      2
  | Sys_error msg ->
      Format.eprintf "barracuda: %s@." msg;
      1
  | Unix.Unix_error (Unix.EADDRINUSE, _, path) ->
      Format.eprintf "barracuda: %s: address already in use@." path;
      Format.eprintf
        "hint: a daemon is already listening there; check it with \
         svc-status or pick another --socket.@.";
      1
  | Unix.Unix_error (e, _, arg) ->
      Format.eprintf "barracuda: %s%s@."
        (if arg = "" then "" else arg ^ ": ")
        (Unix.error_message e);
      1

let layout_term =
  let blocks =
    Arg.(value & opt int 2 & info [ "blocks" ] ~docv:"N" ~doc:"Thread blocks in the grid.")
  in
  let tpb =
    Arg.(value & opt int 64 & info [ "tpb" ] ~docv:"N" ~doc:"Threads per block.")
  in
  let warp =
    Arg.(value & opt int 32 & info [ "warp" ] ~docv:"N" ~doc:"Warp size.")
  in
  let make blocks tpb warp =
    Vclock.Layout.make ~warp_size:warp ~threads_per_block:tpb ~blocks
  in
  Term.(const make $ blocks $ tpb $ warp)

let file_term =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.ptx")

(* Kernel arguments: "alloc:BYTES" allocates global memory and passes
   the base address; "int:V" (or a bare integer) passes the value. *)
let args_term =
  Arg.(
    value & opt_all string []
    & info [ "a"; "arg" ] ~docv:"SPEC"
        ~doc:
          "Kernel argument, in declaration order: $(b,alloc:BYTES) to \
           allocate device memory, $(b,int:V) (or a bare integer) for a \
           scalar. Missing arguments default to $(b,alloc:4096).")

let resolve_args machine kernel specs =
  let nparams = List.length kernel.Ptx.Ast.params in
  let parse spec =
    match String.split_on_char ':' spec with
    | [ "alloc"; n ] ->
        Int64.of_int (Simt.Machine.alloc_global machine (int_of_string n))
    | [ "int"; v ] -> Int64.of_string v
    | [ v ] -> Int64.of_string v
    | _ -> failwith (Printf.sprintf "bad argument spec %S" spec)
  in
  let given = List.map parse specs in
  let missing = nparams - List.length given in
  if missing < 0 then
    failwith
      (Printf.sprintf "kernel %s takes %d arguments, got %d"
         kernel.Ptx.Ast.kname nparams (List.length given));
  let fill =
    List.init missing (fun _ ->
        Int64.of_int (Simt.Machine.alloc_global machine 4096))
  in
  Array.of_list (given @ fill)

let load_kernel file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  Ptx.Parser.kernel_of_string src

let print_machine_result kernel (result : Simt.Machine.result) =
  Format.printf "kernel %s: %d warp instructions executed (%s)@."
    kernel.Ptx.Ast.kname result.Simt.Machine.dyn_instructions
    (match result.Simt.Machine.status with
    | Simt.Machine.Completed -> "completed"
    | Simt.Machine.Max_steps n -> Printf.sprintf "stopped at %d steps" n
    | Simt.Machine.Deadline n ->
        Printf.sprintf "stopped at the wall-clock deadline after %d steps" n)

let print_degraded_caveat report =
  if Barracuda.Report.degraded report then begin
    let i = Barracuda.Report.integrity report in
    Format.printf
      "warning: degraded transport — %d corrupt record%s skipped, %d \
       record%s lost, %d stale/duplicate, %d orphaned branch record%s; \
       the verdict may be missing evidence.@."
      i.Barracuda.Report.corrupt
      (if i.Barracuda.Report.corrupt = 1 then "" else "s")
      i.Barracuda.Report.gaps
      (if i.Barracuda.Report.gaps = 1 then "" else "s")
      i.Barracuda.Report.stale i.Barracuda.Report.desync
      (if i.Barracuda.Report.desync = 1 then "" else "s")
  end

let print_verdict report =
  let errors = Barracuda.Report.errors report in
  print_degraded_caveat report;
  if errors = [] then begin
    Format.printf "no races detected.@.";
    0
  end
  else begin
    Format.printf "%d distinct races detected:@."
      (Barracuda.Report.race_count report);
    List.iter (fun e -> Format.printf "  %a@." Barracuda.Report.pp_error e) errors;
    1
  end

let metrics_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable telemetry and write the metric registry as JSON to \
           $(docv) ($(b,-) for stdout).  The run goes through the full \
           instrument/execute/queue/decode/detect pipeline so all five \
           stage spans are populated.")

let write_metrics path =
  if path = "-" then
    print_string (Telemetry.Export.to_json_string Telemetry.Registry.default)
  else
    match Telemetry.Export.write_json Telemetry.Registry.default ~path with
    | () -> Format.printf "metrics written to %s@." path
    | exception Sys_error msg ->
        Format.eprintf "barracuda: cannot write metrics: %s@." msg;
        exit 1

let check_cmd =
  let run layout file specs max_reports dump_trace metrics shards record =
    guard @@ fun () ->
    if shards < 1 then failwith "--shards must be at least 1";
    if record <> None && shards > 1 then
      failwith "--record is not supported together with --shards";
    if record <> None && dump_trace <> None then
      failwith "--record is not supported together with --dump-trace";
    if record <> None && metrics <> None then
      failwith "--record is not supported together with --metrics";
    let kernel = load_kernel file in
    let machine = Simt.Machine.create ~layout () in
    let args = resolve_args machine kernel specs in
    let config = { Barracuda.Detector.default_config with max_reports } in
    let infer = Gtrace.Infer.create ~layout kernel in
    let trace = ref [] in
    let record_trace ev =
      match dump_trace with
      | Some _ -> trace := List.rev_append (Gtrace.Infer.feed infer ev) !trace
      | None -> ()
    in
    let write_trace () =
      match dump_trace with
      | Some path ->
          let oc = open_out path in
          Gtrace.Serialize.to_channel ~layout oc (List.rev !trace);
          close_out oc;
          Format.printf "trace written to %s@." path
      | None -> ()
    in
    if shards > 1 then begin
      (* Sharded detection: N detector domains over partitioned shadow
         state, verdicts bitwise-identical to the serial pipeline.  The
         trace tee lives on the serial pipeline only. *)
      if dump_trace <> None then
        failwith "--dump-trace is not supported together with --shards";
      (match metrics with
      | Some _ ->
          Telemetry.Registry.set_enabled true;
          Telemetry.Registry.reset Telemetry.Registry.default
      | None -> ());
      let pconfig =
        { Shard.Pipeline.default_config with shards; detector = config }
      in
      let result = Shard.Pipeline.run_sharded ~config:pconfig ~machine kernel args in
      print_machine_result kernel result.Shard.Pipeline.machine_result;
      let code = print_verdict result.Shard.Pipeline.report in
      (match metrics with Some path -> write_metrics path | None -> ());
      code
    end
    else
    match metrics with
    | Some path ->
        (* Telemetry run: the deployed pipeline (Figure 5) end-to-end,
           so the exported registry covers every stage.  The kernel
           executed is the instrumented one, exactly as deployed. *)
        Telemetry.Registry.set_enabled true;
        Telemetry.Registry.reset Telemetry.Registry.default;
        let pconfig =
          { Gpu_runtime.Pipeline.default_config with detector = config }
        in
        let result =
          Gpu_runtime.Pipeline.run ~config:pconfig ~machine ~tee:record_trace
            kernel args
        in
        write_trace ();
        print_machine_result kernel result.Gpu_runtime.Pipeline.machine_result;
        let code = print_verdict (Gpu_runtime.Pipeline.report result) in
        write_metrics path;
        code
    | None when dump_trace <> None ->
        (* The abstract-trace dump needs the raw interpreter events, so
           it keeps the direct detector feed. *)
        let detector = Barracuda.Detector.create ~config ~layout kernel in
        let on_event ev =
          record_trace ev;
          Barracuda.Detector.feed detector ev
        in
        let result = Simt.Machine.launch machine kernel args ~on_event in
        write_trace ();
        print_machine_result kernel result;
        print_verdict (Barracuda.Detector.report detector)
    | None ->
        (* The plain serial check is a thin driver over the streaming
           session core; --record taps its capture hook. *)
        let capture =
          match record with Some _ -> Some (Buffer.create 65536) | None -> None
        in
        let result =
          Gpu_runtime.Session.run_stream ~detector:config ?capture ~machine
            kernel args
        in
        (match (record, capture) with
        | Some path, Some buf ->
            Gpu_runtime.Stream.write_file path ~layout buf;
            Format.printf "stream recorded to %s (%d records)@." path
              result.Gpu_runtime.Session.sr_records
        | _ -> ());
        print_machine_result kernel result.Gpu_runtime.Session.sr_machine_result;
        print_verdict result.Gpu_runtime.Session.sr_report
  in
  let max_reports =
    Arg.(value & opt int 50 & info [ "max-reports" ] ~docv:"N"
           ~doc:"Maximum reports to print.")
  in
  let dump_trace =
    Arg.(value & opt (some string) None
           & info [ "dump-trace" ] ~docv:"FILE"
               ~doc:"Write the abstract trace (paper 3.1) to FILE for \
                     offline replay.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Detector domains to shard detection across (default 1, the \
             serial pipeline).  Shadow state is partitioned \
             deterministically; verdicts are identical at every shard \
             count.")
  in
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE"
          ~doc:
            "Record the sealed wire-record stream (with store values) to \
             $(docv) while checking.  The recording replays through \
             $(b,barracuda stream) with a bitwise-identical verdict.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Race-check a PTX kernel on the simulator.")
    Term.(
      const run $ layout_term $ file_term $ args_term $ max_reports
      $ dump_trace $ metrics_term $ shards $ record)

let profile_cmd =
  let stage_order = [ "instrument"; "execute"; "queue"; "decode"; "detect" ] in
  let run layout file specs parallel queues metrics prom =
    guard @@ fun () ->
    let kernel = load_kernel file in
    let machine = Simt.Machine.create ~layout () in
    let args = resolve_args machine kernel specs in
    Telemetry.Registry.set_enabled true;
    Telemetry.Registry.reset Telemetry.Registry.default;
    let config = { Gpu_runtime.Pipeline.default_config with queues } in
    let t0 = Telemetry.Clock.now_ns () in
    let result =
      if parallel then
        Gpu_runtime.Pipeline.run_parallel ~config ~machine kernel args
      else Gpu_runtime.Pipeline.run ~config ~machine kernel args
    in
    let total_ns = Telemetry.Clock.elapsed_ns ~since:t0 in
    print_machine_result kernel result.Gpu_runtime.Pipeline.machine_result;
    let totals = Telemetry.Span.totals () in
    let by_name n = List.assoc_opt n totals in
    Format.printf "@.%-12s %12s %12s %12s %8s@." "stage" "calls" "total ms"
      "mean us" "share";
    let row name (calls, ns) =
      let ms = Telemetry.Clock.ns_to_ms ns in
      let mean_us =
        if calls = 0 then 0.0 else Int64.to_float ns /. 1e3 /. float_of_int calls
      in
      let share =
        100.0 *. Int64.to_float ns /. Int64.to_float (Int64.max total_ns 1L)
      in
      Format.printf "%-12s %12d %12.3f %12.3f %7.1f%%@." name calls ms mean_us
        share
    in
    List.iter
      (fun name ->
        match by_name name with
        | Some t -> row name t
        | None -> row name (0, 0L))
      stage_order;
    List.iter
      (fun (name, t) ->
        if not (List.mem name stage_order) then row name t)
      totals;
    Format.printf "%-12s %12s %12.3f %12s %7.1f%%@." "wall" ""
      (Telemetry.Clock.ns_to_ms total_ns) "" 100.0;
    let reg = Telemetry.Registry.default in
    let c = Telemetry.Registry.find_counter reg in
    let g = Telemetry.Registry.find_gauge reg in
    Format.printf "@.counters@.";
    List.iter
      (fun (label, v) -> Format.printf "  %-34s %12d@." label v)
      [
        ("records shipped", c "barracuda_pipeline_records_total");
        ("producer stalls", c "barracuda_pipeline_stalls_total");
        ("queue pushes", c "barracuda_queue_pushes_total");
        ("queue pops", c "barracuda_queue_pops_total");
        ("queue high watermark", g "barracuda_queue_high_watermark");
        ("instructions retired", c "barracuda_simt_instructions_retired_total");
        ("divergent branches", c "barracuda_simt_divergent_branches_total");
        ("detector records", c "barracuda_detector_records_total");
        ("detector checks", c "barracuda_detector_checks_total");
        ("epoch fast-path checks", c "barracuda_detector_epoch_fast_total");
        ("full vector-clock scans", c "barracuda_detector_vc_full_total");
        ("race observations", c "barracuda_detector_races_total");
      ];
    let report = Gpu_runtime.Pipeline.report result in
    Format.printf "@.%d distinct races reported.@."
      (Barracuda.Report.race_count report);
    (match metrics with Some path -> write_metrics path | None -> ());
    (match prom with
    | Some path -> (
        match open_out path with
        | oc ->
            output_string oc
              (Telemetry.Export.to_prometheus Telemetry.Registry.default);
            close_out oc;
            Format.printf "prometheus metrics written to %s@." path
        | exception Sys_error msg ->
            Format.eprintf "barracuda: cannot write metrics: %s@." msg;
            exit 1)
    | None -> ());
    0
  in
  let parallel =
    Arg.(value & flag
           & info [ "parallel" ]
               ~doc:"Profile the concurrent host (one consumer domain per \
                     queue) instead of the sequential pipeline.")
  in
  let queues =
    Arg.(value & opt int Gpu_runtime.Pipeline.default_config.Gpu_runtime.Pipeline.queues
           & info [ "queues" ] ~docv:"N" ~doc:"GPU->host log queues.")
  in
  let prom =
    Arg.(value & opt (some string) None
           & info [ "prometheus" ] ~docv:"FILE"
               ~doc:"Also write the registry in Prometheus text format.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run the full pipeline with telemetry enabled and print a \
          per-stage time/count breakdown.")
    Term.(
      const run $ layout_term $ file_term $ args_term $ parallel $ queues
      $ metrics_term $ prom)

let load_trace file =
  let loaded = Gpu_runtime.Replay.load_file file in
  (match Gpu_runtime.Replay.feasibility loaded with
  | Ok () -> ()
  | Error v ->
      Format.printf "warning: trace is not feasible: %a@."
        Gtrace.Feasible.pp_violation v);
  loaded

let replay_cmd =
  let run file =
    guard @@ fun () ->
    let loaded = load_trace file in
    let report = Gpu_runtime.Replay.run loaded in
    let errors = Barracuda.Report.errors report in
    Format.printf "%d operations replayed on %a@."
      (List.length loaded.Gpu_runtime.Replay.ops)
      Vclock.Layout.pp loaded.Gpu_runtime.Replay.layout;
    if errors = [] then begin
      Format.printf "no races detected.@.";
      0
    end
    else begin
      Format.printf "%d distinct races:@." (Barracuda.Report.race_count report);
      List.iter (fun e -> Format.printf "  %a@." Barracuda.Report.pp_error e) errors;
      1
    end
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Race-check a trace file produced by check --dump-trace.")
    Term.(const run $ file_term)

let predict_cmd =
  let run file json witness_dir max_predictions no_validate metrics =
    guard @@ fun () ->
    (match metrics with
    | Some _ ->
        Telemetry.Registry.set_enabled true;
        Telemetry.Registry.reset Telemetry.Registry.default
    | None -> ());
    let loaded = load_trace file in
    let config =
      {
        Predict.Analysis.default_config with
        Predict.Analysis.max_predictions;
        validate = not no_validate;
      }
    in
    let a =
      Predict.Analysis.run ~config ~layout:loaded.Gpu_runtime.Replay.layout
        loaded.Gpu_runtime.Replay.ops
    in
    if json then
      print_endline (Telemetry.Json.to_string (Predict.Analysis.to_json a))
    else Format.printf "@[<v>%a@]@." Predict.Analysis.pp a;
    (match witness_dir with
    | None -> ()
    | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iteri
          (fun i (p : Predict.Analysis.prediction) ->
            match p.Predict.Analysis.witness with
            | None -> ()
            | Some w ->
                let path =
                  Filename.concat dir (Printf.sprintf "witness-%d.trace" (i + 1))
                in
                let oc = open_out path in
                Gtrace.Serialize.to_channel
                  ~layout:loaded.Gpu_runtime.Replay.layout oc
                  w.Predict.Witness.ops;
                close_out oc;
                if not json then
                  Format.printf "witness for #%d written to %s@." (i + 1) path)
          a.Predict.Analysis.predictions);
    (match metrics with Some path -> write_metrics path | None -> ());
    if Predict.Analysis.has_race a then 1 else 0
  in
  let json =
    Arg.(value & flag
           & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let witness_dir =
    Arg.(value & opt (some string) None
           & info [ "witness-dir" ] ~docv:"DIR"
               ~doc:
                 "Write each prediction's witness schedule as a trace file \
                  under $(docv); re-check one with $(b,barracuda replay).")
  in
  let max_predictions =
    Arg.(value
           & opt int Predict.Analysis.default_config.Predict.Analysis.max_predictions
           & info [ "max-predictions" ] ~docv:"N"
               ~doc:"Cap on emitted predictions.")
  in
  let no_validate =
    Arg.(value & flag
           & info [ "no-validate" ]
               ~doc:"Skip witness replay validation (all predictions stay \
                     unconfirmed).")
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict schedule-sensitive races in a recorded trace: build the \
          sync-preserving happens-before graph, enumerate conflicting pairs \
          it leaves unordered, and validate each prediction with a witness \
          schedule replayed through the reference detector.")
    Term.(
      const run $ file_term $ json $ witness_dir $ max_predictions
      $ no_validate $ metrics_term)

let instrument_cmd =
  let run file prune static stats_only =
    guard @@ fun () ->
    let kernel = load_kernel file in
    let r = Instrument.Pass.instrument ~prune ~static kernel in
    if not stats_only then
      print_string (Ptx.Printer.kernel_to_string r.Instrument.Pass.kernel);
    Format.printf "// %a@." Instrument.Stats.pp r.Instrument.Pass.stats;
    0
  in
  let prune =
    Arg.(value & flag & info [ "no-prune" ]
           ~doc:"Disable intra-basic-block logging pruning.")
    |> Term.map not
  in
  let static =
    Arg.(value & flag & info [ "no-static" ]
           ~doc:"Disable static-analysis logging pruning.")
    |> Term.map not
  in
  let stats_only =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print statistics only.")
  in
  Cmd.v
    (Cmd.info "instrument"
       ~doc:"Rewrite a PTX kernel with BARRACUDA logging calls.")
    Term.(const run $ file_term $ prune $ static $ stats_only)

(* ------------------------- static analysis ----------------------- *)

let analyze_json kernel layout (a : Static.Analysis.t) =
  let module J = Telemetry.Json in
  let realizable = Static.Analysis.realizable_pairs a ~layout in
  let verdict_obj i v =
    let base =
      [
        ("insn", J.Int i);
        ("verdict", J.Str (Static.Analysis.verdict_name v));
        ("class", J.Str (Static.Analysis.klass_name (Static.Analysis.klass a i)));
        ( "text",
          J.Str
            (Format.asprintf "%a" Ptx.Printer.pp_insn
               kernel.Ptx.Ast.body.(i)) );
      ]
    in
    match v with
    | Static.Analysis.Safe r ->
        J.Obj (base @ [ ("reason", J.Str (Static.Analysis.reason_name r)) ])
    | _ -> J.Obj base
  in
  let verdicts = ref [] in
  Array.iteri
    (fun i _ ->
      match Static.Analysis.verdict a i with
      | Some v -> verdicts := verdict_obj i v :: !verdicts
      | None -> ())
    kernel.Ptx.Ast.body;
  let pair_obj (p : Static.Analysis.racy_pair) =
    J.Obj
      [
        ("a", J.Int p.Static.Analysis.a_insn);
        ("b", J.Int p.Static.Analysis.b_insn);
        ( "space",
          J.Str
            (match p.Static.Analysis.pair_space with
            | Ptx.Ast.Shared -> "shared"
            | _ -> "global") );
        ( "base",
          match p.Static.Analysis.base_param with
          | Some b -> J.Str b
          | None -> J.Null );
        ("addr", J.Int (Int64.to_int p.Static.Analysis.addr));
        ("width", J.Int p.Static.Analysis.pair_width);
        ("realizable", J.Bool (List.memq p realizable));
      ]
  in
  let safe, racy, unknown = Static.Analysis.counts a in
  J.Obj
    [
      ("kernel", J.Str kernel.Ptx.Ast.kname);
      ("instructions", J.Int (Array.length kernel.Ptx.Ast.body));
      ("safe", J.Int safe);
      ("racy", J.Int racy);
      ("unknown", J.Int unknown);
      ("provably_racy", J.Bool (realizable <> []));
      ("verdicts", J.List (List.rev !verdicts));
      ("pairs", J.List (List.map pair_obj (Static.Analysis.pairs a)));
    ]

let analyze_cmd =
  let run layout file json noalias metrics =
    guard @@ fun () ->
    (match metrics with
    | Some _ ->
        Telemetry.Registry.set_enabled true;
        Telemetry.Registry.reset Telemetry.Registry.default
    | None -> ());
    let kernel = load_kernel file in
    let a = Static.Analysis.analyze ~assume_noalias:noalias kernel in
    let racy_now = Static.Analysis.provably_racy a ~layout in
    if json then
      print_endline (Telemetry.Json.to_string (analyze_json kernel layout a))
    else begin
      let safe, racy, unknown = Static.Analysis.counts a in
      Format.printf
        "kernel %s: %d instructions, %d memory accesses (%d safe / %d racy \
         / %d unknown)@."
        kernel.Ptx.Ast.kname
        (Array.length kernel.Ptx.Ast.body)
        (safe + racy + unknown) safe racy unknown;
      Array.iteri
        (fun i insn ->
          match Static.Analysis.verdict a i with
          | Some v ->
              Format.printf "  %4d  %-12s %-14s %a@." i
                (Static.Analysis.klass_name (Static.Analysis.klass a i))
                (Format.asprintf "%a" Static.Analysis.pp_verdict v)
                Ptx.Printer.pp_insn insn
          | None -> ())
        kernel.Ptx.Ast.body;
      List.iter
        (fun p -> Format.printf "  %a@." Static.Analysis.pp_pair p)
        (Static.Analysis.pairs a);
      if racy_now then
        Format.printf
          "provably racy for %d blocks x %d threads: no execution needed.@."
          layout.Vclock.Layout.blocks layout.Vclock.Layout.threads_per_block
      else if racy + unknown = 0 then
        Format.printf
          "provably race-free: every access is safe; logging fully pruned.@."
      else
        Format.printf "%d access%s left for dynamic checking.@."
          (racy + unknown)
          (if racy + unknown = 1 then "" else "es")
    end;
    (match metrics with Some path -> write_metrics path | None -> ());
    if racy_now then 1 else 0
  in
  let json =
    Arg.(value & flag
           & info [ "json" ] ~doc:"Emit the verdicts as JSON instead of text.")
  in
  let noalias =
    Arg.(value & flag
           & info [ "no-noalias" ]
               ~doc:
                 "Drop the assumption that distinct kernel pointer \
                  parameters never alias.")
    |> Term.map not
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically classify a kernel's memory accesses: provably \
          race-free accesses (whose logging the instrumentation drops), \
          provably racy pairs (reported without executing the kernel), \
          and everything left for dynamic checking.  Exits 1 when the \
          kernel is provably racy for the given layout.")
    Term.(const run $ layout_term $ file_term $ json $ noalias $ metrics_term)

(* ------------------------- automated repair ----------------------- *)

let repair_json ~original (r : Repair.Engine.result) =
  let module J = Telemetry.Json in
  let d = r.Repair.Engine.diagnosis in
  let base =
    [
      ("verdict", J.Str (Repair.Engine.verdict_name r.Repair.Engine.verdict));
      ("racy", J.Bool d.Repair.Localize.racy);
      ("observed_racy", J.Bool d.Repair.Localize.observed_racy);
      ("predicted_racy", J.Bool d.Repair.Localize.predicted_racy);
      ("static_racy", J.Bool d.Repair.Localize.static_racy);
      ("bardiv", J.Bool d.Repair.Localize.bardiv);
      ( "pairs",
        J.List
          (List.map
             (fun (a, b) -> J.List [ J.Int a; J.Int b ])
             d.Repair.Localize.pairs) );
      ("candidates_total", J.Int r.Repair.Engine.candidates_total);
      ("candidates_tried", J.Int r.Repair.Engine.candidates_tried);
      ( "rejected",
        J.List
          (List.map
             (fun (c, why) ->
               J.Obj [ ("candidate", J.Str c); ("reason", J.Str why) ])
             r.Repair.Engine.rejected) );
    ]
  in
  let fix =
    match r.Repair.Engine.verdict with
    | Repair.Engine.Fixed f ->
        [
          ( "fix",
            J.Obj
              [
                ("description", J.Str f.Repair.Engine.description);
                ( "kind",
                  J.Str (Repair.Candidates.kind_name f.Repair.Engine.kind) );
                ("cost", J.Float f.Repair.Engine.cost);
                ( "sites",
                  J.List (List.map (fun i -> J.Int i) f.Repair.Engine.sites) );
                ("ptx", J.Str f.Repair.Engine.ptx);
                ( "patch",
                  J.Str (Repair.Engine.patch_of ~original f) );
              ] );
        ]
    | _ -> []
  in
  J.Obj (("version", J.Int 1) :: (base @ fix))

let repair_cmd =
  let run layout file specs max_candidates max_steps seed json out metrics =
    guard @@ fun () ->
    (match metrics with
    | Some _ ->
        Telemetry.Registry.set_enabled true;
        Telemetry.Registry.reset Telemetry.Registry.default
    | None -> ());
    let kernel = load_kernel file in
    let setup machine = resolve_args machine kernel specs in
    let config =
      {
        Repair.Engine.default_config with
        Repair.Engine.max_candidates;
        max_steps;
        seed;
      }
    in
    let r = Repair.Engine.repair ~config ~layout ~setup kernel in
    let write_out fix =
      match out with
      | None -> ()
      | Some dir ->
          (try Unix.mkdir dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          let base = Filename.remove_extension (Filename.basename file) in
          let ptx_path = Filename.concat dir (base ^ ".repaired.ptx") in
          let patch_path = Filename.concat dir (base ^ ".patch") in
          let save path contents =
            let oc = open_out path in
            output_string oc contents;
            close_out oc
          in
          (match fix with
          | Some (f : Repair.Engine.fix) ->
              save ptx_path f.Repair.Engine.ptx;
              save patch_path (Repair.Engine.patch_of ~original:kernel f);
              if not json then
                Format.printf "repaired kernel written to %s, patch to %s@."
                  ptx_path patch_path
          | None -> ())
    in
    let code =
      if json then begin
        print_endline (Telemetry.Json.to_string (repair_json ~original:kernel r));
        match r.Repair.Engine.verdict with
        | Repair.Engine.Fixed f ->
            write_out (Some f);
            0
        | Repair.Engine.Already_clean -> 0
        | Repair.Engine.Unfixable -> 1
      end
      else begin
        let d = r.Repair.Engine.diagnosis in
        if d.Repair.Localize.racy then begin
          Format.printf "kernel %s is racy (%s%s%s)@." kernel.Ptx.Ast.kname
            (if d.Repair.Localize.observed_racy then "observed" else "")
            (if d.Repair.Localize.predicted_racy then
               (if d.Repair.Localize.observed_racy then ", predicted"
                else "predicted")
             else "")
            (if d.Repair.Localize.static_racy then ", provably static"
             else "");
          List.iter
            (fun (a, b) ->
              Format.printf "  racy pair: insn %d vs insn %d@." a b)
            d.Repair.Localize.pairs
        end;
        match r.Repair.Engine.verdict with
        | Repair.Engine.Already_clean ->
            Format.printf
              "kernel %s is already race-free: nothing to repair.@."
              kernel.Ptx.Ast.kname;
            0
        | Repair.Engine.Fixed f ->
            Format.printf "accepted fix (%d of %d candidates tried): %s@."
              r.Repair.Engine.candidates_tried r.Repair.Engine.candidates_total
              f.Repair.Engine.description;
            List.iter
              (fun (c, why) -> Format.printf "  rejected: %s — %s@." c why)
              r.Repair.Engine.rejected;
            Format.printf "%s@." (Repair.Engine.patch_of ~original:kernel f);
            Format.printf
              "validated: serial x2 (deterministic), sharded parity, \
               predictive schedules, fault slice — all race-free.@.";
            write_out (Some f);
            0
        | Repair.Engine.Unfixable ->
            Format.printf
              "no fix found: %d of %d candidates tried, all rejected.@."
              r.Repair.Engine.candidates_tried r.Repair.Engine.candidates_total;
            List.iter
              (fun (c, why) -> Format.printf "  rejected: %s — %s@." c why)
              r.Repair.Engine.rejected;
            1
      end
    in
    (match metrics with Some path -> write_metrics path | None -> ());
    code
  in
  let max_candidates =
    Arg.(value
           & opt int Repair.Engine.default_config.Repair.Engine.max_candidates
           & info [ "max-candidates" ] ~docv:"N"
               ~doc:"Validation budget: candidate fixes tried per kernel.")
  in
  let max_steps =
    Arg.(value & opt int Repair.Engine.default_config.Repair.Engine.max_steps
           & info [ "max-steps" ] ~docv:"N"
               ~doc:"Step budget for each validation run.")
  in
  let seed =
    Arg.(value & opt int Repair.Engine.default_config.Repair.Engine.seed
           & info [ "seed" ] ~docv:"N"
               ~doc:"Seed for the fault-campaign validation slice; the \
                     whole search is deterministic for a fixed seed.")
  in
  let json =
    Arg.(value & flag
           & info [ "json" ] ~doc:"Emit the repair result as JSON.")
  in
  let out =
    Arg.(value & opt (some string) None
           & info [ "out" ] ~docv:"DIR"
               ~doc:"Write the repaired kernel and its patch into $(docv).")
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Diagnose a racy PTX kernel and search for a minimal fix — \
          atomic promotion, fence strengthening or insertion, or a \
          bar.sync at the CFG phase boundary — accepting only a patch \
          that the unchanged detector (serial and sharded), the \
          predictive schedule explorer and a fault-injection slice all \
          agree is race-free.  Exits 1 when the kernel is racy and no \
          candidate survives validation.")
    Term.(
      const run $ layout_term $ file_term $ args_term $ max_candidates
      $ max_steps $ seed $ json $ out $ metrics_term)

(* The suite scores as JSON, for the service CI smoke job and
   dashboards: overall numbers plus one record per case so a
   regression names the kernel that flipped. *)
let repair_score_json (rp : Bugsuite.Harness.repair_score) =
  let module J = Telemetry.Json in
  let totals (s : Bugsuite.Harness.repair_score) =
    [
      ("fixed", J.Int s.Bugsuite.Harness.fixed);
      ("already_clean", J.Int s.Bugsuite.Harness.clean);
      ("unfixable", J.Int s.Bugsuite.Harness.unfixable);
      ("fix_rejected", J.Int s.Bugsuite.Harness.fix_rejected);
    ]
  in
  let case (o : Bugsuite.Harness.repair_outcome) =
    let fix =
      match o.Bugsuite.Harness.result.Repair.Engine.verdict with
      | Repair.Engine.Fixed f ->
          [ ("fix", J.Str f.Repair.Engine.description) ]
      | _ -> []
    in
    J.Obj
      ([
         ("name", J.Str o.Bugsuite.Harness.case.Bugsuite.Case.name);
         ("family", J.Str (Bugsuite.Harness.family o.Bugsuite.Harness.case));
         ( "verdict",
           J.Str
             (Repair.Engine.verdict_name
                o.Bugsuite.Harness.result.Repair.Engine.verdict) );
         ( "candidates_tried",
           J.Int o.Bugsuite.Harness.result.Repair.Engine.candidates_tried );
       ]
      @ fix)
  in
  J.Obj
    (totals rp
    @ [
        ( "families",
          J.Obj
            (List.map
               (fun (f, s) -> (f, J.Obj (totals s)))
               (Bugsuite.Harness.repair_families rp)) );
        ("cases", J.List (List.map case rp.Bugsuite.Harness.repair_outcomes));
      ])

let suite_json (b : Bugsuite.Harness.score) (r : Bugsuite.Harness.score)
    (po : Bugsuite.Harness.score) (pp_ : Bugsuite.Harness.score)
    (rp : Bugsuite.Harness.repair_score) =
  let module J = Telemetry.Json in
  let score_obj (s : Bugsuite.Harness.score) =
    J.Obj
      [
        ("correct", J.Int s.Bugsuite.Harness.correct);
        ("total", J.Int s.Bugsuite.Harness.total);
      ]
  in
  let outcome (o : Bugsuite.Harness.outcome) =
    J.Obj
      [
        ("id", J.Int o.Bugsuite.Harness.case.Bugsuite.Case.id);
        ("name", J.Str o.Bugsuite.Harness.case.Bugsuite.Case.name);
        ( "truth",
          J.Str
            (Format.asprintf "%a" Bugsuite.Case.pp_verdict
               o.Bugsuite.Harness.case.Bugsuite.Case.verdict) );
        ("reported_race", J.Bool o.Bugsuite.Harness.reported_race);
        ("correct", J.Bool o.Bugsuite.Harness.correct);
      ]
  in
  J.Obj
    [
      ("version", J.Int 1);
      ("barracuda", score_obj b);
      ("racecheck", score_obj r);
      ( "predictive",
        J.Obj [ ("online", score_obj po); ("predict", score_obj pp_) ] );
      ("repair", repair_score_json rp);
      ("cases", J.List (List.map outcome b.Bugsuite.Harness.outcomes));
    ]

let suite_cmd =
  let run verbose json =
    guard @@ fun () ->
    let cases = Bugsuite.Cases.all in
    let b = Bugsuite.Harness.run_barracuda cases in
    let r = Bugsuite.Harness.run_racecheck cases in
    if json then begin
      let pcases = Bugsuite.Cases.predictive in
      let po = Bugsuite.Harness.run_barracuda pcases in
      let pp_ = Bugsuite.Harness.run_predict pcases in
      let rp = Bugsuite.Harness.run_repair cases in
      print_endline (Telemetry.Json.to_string (suite_json b r po pp_ rp));
      if b.Bugsuite.Harness.correct = b.Bugsuite.Harness.total then 0 else 1
    end
    else begin
    if verbose then
      List.iter
        (fun (o : Bugsuite.Harness.outcome) ->
          Format.printf "%3d %-36s truth=%-9s reported=%-5b %s@."
            o.Bugsuite.Harness.case.Bugsuite.Case.id
            o.Bugsuite.Harness.case.Bugsuite.Case.name
            (Format.asprintf "%a" Bugsuite.Case.pp_verdict
               o.Bugsuite.Harness.case.Bugsuite.Case.verdict)
            o.Bugsuite.Harness.reported_race
            (if o.Bugsuite.Harness.correct then "ok" else "WRONG"))
        b.Bugsuite.Harness.outcomes;
    Format.printf "BARRACUDA:      %d/%d@." b.Bugsuite.Harness.correct
      b.Bugsuite.Harness.total;
    Format.printf "CUDA-Racecheck: %d/%d@." r.Bugsuite.Harness.correct
      r.Bugsuite.Harness.total;
    let pcases = Bugsuite.Cases.predictive in
    let po = Bugsuite.Harness.run_barracuda pcases in
    let pp_ = Bugsuite.Harness.run_predict pcases in
    Format.printf
      "schedule-sensitive supplement: online %d/%d, predict %d/%d@."
      po.Bugsuite.Harness.correct po.Bugsuite.Harness.total
      pp_.Bugsuite.Harness.correct pp_.Bugsuite.Harness.total;
    let rp = Bugsuite.Harness.run_repair cases in
    Format.printf "automated repair: %a@." Bugsuite.Harness.pp_repair_score
      (if verbose then rp
       else { rp with Bugsuite.Harness.repair_outcomes = [] });
    List.iter
      (fun (f, s) ->
        if s.Bugsuite.Harness.fixed + s.Bugsuite.Harness.unfixable > 0 then
          Format.printf "  %-12s fixed %d / racy %d@." f
            s.Bugsuite.Harness.fixed
            (s.Bugsuite.Harness.fixed + s.Bugsuite.Harness.unfixable))
      (Bugsuite.Harness.repair_families rp);
    if b.Bugsuite.Harness.correct = b.Bugsuite.Harness.total then 0 else 1
    end
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ]) in
  let json =
    Arg.(value & flag
           & info [ "json" ]
               ~doc:"Emit the scores (and per-case outcomes) as JSON.")
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run the 66-program concurrency bug suite.")
    Term.(const run $ verbose $ json)

let litmus_cmd =
  let run runs =
    List.iter
      (fun r -> Format.printf "%a@." Memmodel.Litmus.pp_row r)
      (Memmodel.Litmus.figure4 ~runs ());
    0
  in
  let runs =
    Arg.(value & opt int 200_000 & info [ "runs" ] ~docv:"N"
           ~doc:"Runs per fence combination.")
  in
  Cmd.v
    (Cmd.info "litmus" ~doc:"Memory-fence litmus tests (Figure 4).")
    Term.(const run $ runs)

let sweep_cmd =
  let run layout file specs =
    guard @@ fun () ->
    let kernel = load_kernel file in
    let setup machine = resolve_args machine kernel specs in
    let result = Barracuda.Warp_sweep.sweep ~layout ~setup kernel in
    Format.printf "%a" Barracuda.Warp_sweep.pp result;
    if result.Barracuda.Warp_sweep.latent then 1 else 0
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Hunt for latent warp-size assumptions by race-checking the \
          kernel under several simulated warp widths.")
    Term.(const run $ layout_term $ file_term $ args_term)

let table1_cmd =
  let run () =
    List.iter
      (fun (w : Workloads.Workload.t) ->
        let det, _ = Workloads.Workload.run_detector w in
        let report = Barracuda.Detector.report det in
        let s, g = Workloads.Workload.racy_word_counts report in
        Format.printf "%-18s %-9s threads=%-6d shared-races=%-4d global-races=%d@."
          w.Workloads.Workload.name w.Workloads.Workload.suite
          (Workloads.Workload.total_threads w)
          s g)
      Workloads.Registry.all;
    0
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Race-check the 26 evaluation workloads.")
    Term.(const run $ const ())

(* ------------------------- service mode -------------------------- *)

let socket_term =
  Arg.(
    value
    & opt string Service.Server.default_config.Service.Server.socket_path
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix domain socket the daemon listens on.")

(* NAME:RATE:BURST:SEATS, e.g. acme:5:10:2.  RATE is jobs/second (0 =
   unlimited); SEATS caps concurrent jobs (0 = unlimited). *)
let parse_tenant_quota spec =
  match String.split_on_char ':' spec with
  | [ name; rate; burst; seats ] when name <> "" -> (
      match
        (float_of_string_opt rate, int_of_string_opt burst,
         int_of_string_opt seats)
      with
      | Some rate, Some burst, Some seats ->
          (name, { Service.Scheduler.rate; burst; seats })
      | _ ->
          failwith
            (Printf.sprintf "bad --tenant-quota %S (want NAME:RATE:BURST:SEATS)"
               spec))
  | _ ->
      failwith
        (Printf.sprintf "bad --tenant-quota %S (want NAME:RATE:BURST:SEATS)"
           spec)

let serve_cmd =
  let run socket workers queue_capacity cache_capacity max_steps deadline_ms
      job_shards sessions quotas campaign_dir campaign_seed campaign_cases
      campaign_trials campaign_batch campaign_duty =
    guard @@ fun () ->
    if job_shards < 1 then failwith "--job-shards must be at least 1";
    if sessions < 0 then failwith "--sessions must be at least 0";
    (* The daemon always runs with telemetry on: the status reply, the
       metrics request and the Prometheus exporter feed from it. *)
    Telemetry.Registry.set_enabled true;
    let tenant_quotas = List.map parse_tenant_quota quotas in
    let config =
      {
        Service.Server.default_config with
        Service.Server.socket_path = socket;
        workers;
        queue_capacity;
        cache_capacity;
        max_steps;
        job_deadline_ms = deadline_ms;
        job_shards;
        session_seats = sessions;
        tenant_quotas;
      }
    in
    let t = Service.Server.start ~config () in
    (* The background campaign composes in here — the server cannot
       depend on the campaign layer — running as the lowest-priority
       work in the daemon process, pausing whenever the server carries
       load and checkpointing its journal after every batch. *)
    let campaign =
      match campaign_dir with
      | None -> None
      | Some dir -> (
          let cfg =
            {
              Campaign.Daemon.seed = campaign_seed;
              cases = campaign_cases;
              trials = campaign_trials;
              batch = campaign_batch;
              duty = campaign_duty;
              load = (fun () -> Service.Server.load t);
            }
          in
          match Campaign.Daemon.start ~config:cfg ~dir () with
          | Error message ->
              Service.Server.stop t;
              failwith message
          | Ok d ->
              Service.Server.set_campaign_hook t (fun () ->
                  Some (Campaign.Daemon.status d));
              Some d)
    in
    let stop_signal _ = Service.Server.request_stop t in
    (try
       Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
       Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal)
     with Invalid_argument _ | Sys_error _ -> ());
    if job_shards > 1 then
      Format.printf
        "barracuda service listening on %s (%d job seats x %d shards from a \
         %d-domain budget, queue %d, cache %d)@."
        socket
        (max 1 (workers / job_shards))
        job_shards workers queue_capacity cache_capacity
    else
      Format.printf
        "barracuda service listening on %s (%d workers, %d session seats, \
         queue %d, cache %d)@."
        socket workers sessions queue_capacity cache_capacity;
    List.iter
      (fun (name, q) ->
        Format.printf
          "  tenant %s: %.3g jobs/s (burst %d), %s concurrent@." name
          q.Service.Scheduler.rate q.Service.Scheduler.burst
          (if q.Service.Scheduler.seats > 0 then
             string_of_int q.Service.Scheduler.seats
           else "unlimited"))
      tenant_quotas;
    (match (campaign, campaign_dir) with
    | Some _, Some dir ->
        Format.printf "  background campaign journaling to %s@." dir
    | _ -> ());
    Service.Server.wait t;
    Option.iter Campaign.Daemon.stop campaign;
    Format.printf "barracuda service stopped.@.";
    0
  in
  let workers =
    Arg.(value
           & opt int Service.Server.default_config.Service.Server.workers
           & info [ "workers" ] ~docv:"N" ~doc:"Worker domains.")
  in
  let queue =
    Arg.(value
           & opt int Service.Server.default_config.Service.Server.queue_capacity
           & info [ "queue" ] ~docv:"N"
               ~doc:"Job queue bound; submissions beyond it are rejected \
                     with a retry hint.")
  in
  let cache =
    Arg.(value
           & opt int Service.Server.default_config.Service.Server.cache_capacity
           & info [ "cache" ] ~docv:"N" ~doc:"Artifact cache entries.")
  in
  let max_steps =
    Arg.(value
           & opt int Service.Server.default_config.Service.Server.max_steps
           & info [ "max-steps" ] ~docv:"N"
               ~doc:"Per-job step budget; a kernel that exceeds it fails \
                     with a structured timeout.")
  in
  let deadline =
    Arg.(value
           & opt int Service.Server.default_config.Service.Server.job_deadline_ms
           & info [ "deadline-ms" ] ~docv:"MS"
               ~doc:"Per-job wall-clock deadline; a kernel that exceeds it \
                     fails with a structured deadline error.  0 disables.")
  in
  let job_shards =
    Arg.(value
           & opt int Service.Server.default_config.Service.Server.job_shards
           & info [ "job-shards" ] ~docv:"N"
               ~doc:"Detector domains per job.  Above 1, the --workers \
                     domain budget is split between job seats and \
                     intra-job shards (workers / N seats, at least 1).")
  in
  let sessions =
    Arg.(value
           & opt int Service.Server.default_config.Service.Server.session_seats
           & info [ "sessions" ] ~docv:"N"
               ~doc:"Long-lived streaming-session seats (dedicated \
                     domains, separate from the --workers batch pool).  \
                     0 disables streaming.")
  in
  let quotas =
    Arg.(value & opt_all string []
           & info [ "tenant-quota" ] ~docv:"NAME:RATE:BURST:SEATS"
               ~doc:"Per-tenant admission quota (repeatable): sustained \
                     RATE jobs/s with BURST back-to-back, at most SEATS \
                     concurrent jobs (0 = unlimited).  Tenants without a \
                     quota are unlimited but still scheduled fairly.")
  in
  let campaign_dir =
    Arg.(value & opt (some string) None
           & info [ "campaign" ] ~docv:"DIR"
               ~doc:"Run the continuous background fault campaign inside \
                     the daemon, journaling to $(docv) (resumes an \
                     existing journal).")
  in
  let campaign_seed =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.seed
           & info [ "campaign-seed" ] ~docv:"N"
               ~doc:"Background campaign seed (ignored when resuming).")
  in
  let campaign_cases =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.cases
           & info [ "campaign-cases" ] ~docv:"N"
               ~doc:"Bug-suite cases the background campaign sweeps.")
  in
  let campaign_trials =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.trials
           & info [ "campaign-trials" ] ~docv:"N"
               ~doc:"Background campaign trials per (case, fault class).")
  in
  let campaign_batch =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.batch
           & info [ "campaign-batch" ] ~docv:"N"
               ~doc:"Trials per journal checkpoint.")
  in
  let campaign_duty =
    Arg.(value & opt float Campaign.Daemon.default_config.Campaign.Daemon.duty
           & info [ "campaign-duty" ] ~docv:"FRAC"
               ~doc:"Fraction of idle wall-clock the campaign may use.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the race-checking daemon: a bounded job queue with \
          per-tenant fair scheduling and quotas, a self-healing pool of \
          worker domains, a content-hash artifact cache and an optional \
          continuous background fault campaign behind a Unix domain \
          socket.")
    Term.(const run $ socket_term $ workers $ queue $ cache $ max_steps
          $ deadline $ job_shards $ sessions $ quotas $ campaign_dir
          $ campaign_seed $ campaign_cases $ campaign_trials
          $ campaign_batch $ campaign_duty)

let tenant_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:
          "Tenant the job is accounted (and rate-limited) under; \
           omitted jobs join the daemon's default tenant.")

let submit_cmd =
  let run socket layout file specs kind no_prune no_static retries json tenant =
    guard @@ fun () ->
    let ic = open_in file in
    let payload = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let kind =
      match kind with
      | "check" -> Service.Protocol.Check
      | "predict" -> Service.Protocol.Predict
      | "repair" -> Service.Protocol.Repair
      | k -> failwith (Printf.sprintf "unknown job kind %S" k)
    in
    let sub =
      {
        Service.Protocol.kind;
        payload;
        layout =
          Some
            ( layout.Vclock.Layout.blocks,
              layout.Vclock.Layout.threads_per_block,
              layout.Vclock.Layout.warp_size );
        args = specs;
        prune = not no_prune;
        static = not no_static;
        tenant;
      }
    in
    match Service.Client.submit ~retries ~socket sub with
    | Ok (Service.Protocol.Result { job; outcome; queue_ms; run_ms }) ->
        if json then
          print_endline
            (Service.Protocol.encode_response
               (Service.Protocol.Result { job; outcome; queue_ms; run_ms }))
        else begin
          List.iter
            (fun e -> Format.printf "  %s@." e)
            outcome.Service.Protocol.errors;
          Format.printf
            "job %d: %s (%d races, cache %s, queued %.1f ms, ran %.1f ms)@."
            job
            (Service.Protocol.verdict_string outcome.Service.Protocol.verdict)
            outcome.Service.Protocol.races
            (if outcome.Service.Protocol.cache_hit then "hit" else "miss")
            queue_ms run_ms;
          if outcome.Service.Protocol.predicted > 0 then
            Format.printf "  %d schedule-sensitive predictions (%d confirmed)@."
              outcome.Service.Protocol.predicted
              outcome.Service.Protocol.confirmed;
          if outcome.Service.Protocol.static then
            Format.printf
              "  verdict from the static analysis alone: the kernel was \
               never executed@.";
          if outcome.Service.Protocol.repaired then
            Format.printf "  repaired (%d candidate%s tried): %s@."
              outcome.Service.Protocol.repair_tried
              (if outcome.Service.Protocol.repair_tried = 1 then "" else "s")
              outcome.Service.Protocol.fix
          else if kind = Service.Protocol.Repair then
            Format.printf "  %s@."
              (if outcome.Service.Protocol.verdict = Service.Protocol.Racy
               then
                 Printf.sprintf "unfixable: %d candidates tried, all rejected"
                   outcome.Service.Protocol.repair_tried
               else "already race-free: nothing to repair");
          if outcome.Service.Protocol.degraded then
            Format.printf
              "  warning: degraded transport — the verdict may be missing \
               evidence@."
        end;
        if outcome.Service.Protocol.verdict = Service.Protocol.Racy then 1
        else 0
    | Ok (Service.Protocol.Rejected { reason; retry_after_ms }) ->
        Format.eprintf
          "barracuda: job rejected (%s); retry in %d ms or raise --retries@."
          reason retry_after_ms;
        2
    | Ok (Service.Protocol.Failed { job; code; message }) ->
        Format.eprintf "barracuda: job %d failed (%s): %s@." job code message;
        2
    | Ok (Service.Protocol.Error message) ->
        Format.eprintf "barracuda: protocol error: %s@." message;
        2
    | Ok _ ->
        Format.eprintf "barracuda: unexpected reply from the daemon@.";
        2
    | Error message ->
        Format.eprintf "barracuda: cannot reach the daemon: %s@." message;
        1
  in
  let kind =
    Arg.(value & opt string "check"
           & info [ "kind" ] ~docv:"KIND"
               ~doc:"$(b,check) a PTX kernel, $(b,predict) over a recorded \
                     trace, or $(b,repair) a racy PTX kernel.")
  in
  let no_prune =
    Arg.(value & flag
           & info [ "no-prune" ] ~doc:"Disable the logging-pruning pass.")
  in
  let no_static =
    Arg.(value & flag
           & info [ "no-static" ]
               ~doc:"Disable the static race analysis (no logging pruning, \
                     no instant racy verdicts).")
  in
  let retries =
    Arg.(value & opt int 10
           & info [ "retries" ] ~docv:"N"
               ~doc:"Retries when the daemon's queue rejects the job.")
  in
  let json =
    Arg.(value & flag
           & info [ "json" ] ~doc:"Print the raw JSON result line.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Send a PTX kernel (or a recorded trace) to a running barracuda \
          daemon and wait for the verdict.")
    Term.(
      const run $ socket_term $ layout_term $ file_term $ args_term $ kind
      $ no_prune $ no_static $ retries $ json $ tenant_term)

let stream_cmd =
  let run socket file trace specs chunk flush_every no_prune no_static retries
      tenant =
    guard @@ fun () ->
    if chunk < 1 then failwith "--chunk must be at least 1";
    let ic = open_in file in
    let payload = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (* The recorded layout travels in the stream file's header: the
       session replays under exactly the grid that produced it. *)
    let layout, cells = Gpu_runtime.Stream.read_file trace in
    let sub =
      {
        Service.Protocol.kind = Service.Protocol.Check;
        payload;
        layout =
          Some
            ( layout.Vclock.Layout.blocks,
              layout.Vclock.Layout.threads_per_block,
              layout.Vclock.Layout.warp_size );
        args = specs;
        prune = not no_prune;
        static = not no_static;
        tenant;
      }
    in
    let print_verdict ~label (v : Service.Client.stream_verdict) =
      Format.printf "%s: %d records, %s (%d race%s)@." label
        v.Service.Client.v_records
        (Service.Protocol.verdict_string v.Service.Client.v_verdict)
        v.Service.Client.v_races
        (if v.Service.Client.v_races = 1 then "" else "s");
      if v.Service.Client.v_degraded then
        Format.printf
          "  warning: degraded transport — %d corrupt, %d lost, %d stale, \
           %d desynced@."
          v.Service.Client.v_corrupt v.Service.Client.v_gaps
          v.Service.Client.v_stale v.Service.Client.v_desync
    in
    match Service.Client.stream_open ~retries ~socket sub with
    | Error message ->
        Format.eprintf "barracuda: cannot open a session: %s@." message;
        1
    | Ok s -> (
        let total = String.length cells in
        let nchunks = max 1 ((total + chunk - 1) / chunk) in
        Format.printf
          "session %d open on %s: shipping %d bytes in %d chunk%s@."
          (Service.Client.session_sid s)
          socket total nchunks
          (if nchunks = 1 then "" else "s");
        let failed message =
          Service.Client.stream_abort s;
          Format.eprintf "barracuda: stream failed: %s@." message;
          None
        in
        let rec ship sent i =
          if sent >= total then Some ()
          else
            let len = min chunk (total - sent) in
            match Service.Client.stream_append s (String.sub cells sent len) with
            | Error message -> failed message
            | Ok records -> (
                let sent = sent + len and i = i + 1 in
                if
                  flush_every > 0 && i mod flush_every = 0 && sent < total
                then
                  match Service.Client.stream_flush s with
                  | Error message -> failed message
                  | Ok v ->
                      print_verdict
                        ~label:
                          (Printf.sprintf "chunk %d/%d" i nchunks)
                        v;
                      ship sent i
                else begin
                  ignore records;
                  ship sent i
                end)
        in
        match ship 0 0 with
        | None -> 1
        | Some () -> (
            match Service.Client.stream_close s with
            | Error message ->
                Format.eprintf "barracuda: stream failed: %s@." message;
                1
            | Ok v ->
                print_verdict ~label:"final" v;
                if v.Service.Client.v_verdict = Service.Protocol.Racy then 1
                else 0))
  in
  let trace =
    Arg.(
      required
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Recorded wire-record stream from $(b,barracuda check \
                --record).")
  in
  let chunk =
    Arg.(
      value & opt int 4096
      & info [ "chunk" ] ~docv:"BYTES"
          ~doc:"Chunk size; cells are split at arbitrary byte boundaries \
                and reassembled daemon-side.")
  in
  let flush_every =
    Arg.(
      value & opt int 8
      & info [ "flush-every" ] ~docv:"N"
          ~doc:"Checkpoint (and print the verdict so far) every $(docv) \
                chunks; 0 checkpoints only at close.")
  in
  let no_prune =
    Arg.(value & flag
           & info [ "no-prune" ] ~doc:"Disable the logging-pruning pass.")
  in
  let no_static =
    Arg.(value & flag
           & info [ "no-static" ]
               ~doc:"Disable the static race analysis tier.")
  in
  let retries =
    Arg.(value & opt int 10
           & info [ "retries" ] ~docv:"N"
               ~doc:"Retries when every daemon session seat is occupied.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Ship a recorded wire-record stream to a running daemon in \
          chunks over a long-lived session, printing online verdicts at \
          each checkpoint.  The final verdict is bitwise-identical to a \
          one-shot check of the same kernel.")
    Term.(
      const run $ socket_term $ file_term $ trace $ args_term $ chunk
      $ flush_every $ no_prune $ no_static $ retries $ tenant_term)

let svc_status_cmd =
  let run socket prometheus json shutdown =
    guard @@ fun () ->
    if shutdown then
      match Service.Client.shutdown ~socket with
      | Ok () ->
          Format.printf "daemon on %s is stopping.@." socket;
          0
      | Error message ->
          Format.eprintf "barracuda: cannot reach the daemon: %s@." message;
          1
    else if prometheus then
      match Service.Client.metrics ~socket with
      | Ok text ->
          print_string text;
          0
      | Error message ->
          Format.eprintf "barracuda: cannot reach the daemon: %s@." message;
          1
    else
      match Service.Client.status ~socket with
      | Ok s ->
          if json then
            print_endline
              (Service.Protocol.encode_response
                 (Service.Protocol.Status_reply s))
          else begin
            Format.printf "daemon on %s: up %.1f s@." socket
              (s.Service.Protocol.uptime_ms /. 1000.0);
            Format.printf "  workers   %d (%d busy)@."
              s.Service.Protocol.workers s.Service.Protocol.busy;
            Format.printf "  queue     %d/%d@." s.Service.Protocol.queue_depth
              s.Service.Protocol.queue_capacity;
            Format.printf
              "  jobs      %d submitted, %d completed (%d racy / %d \
               race-free), %d failed, %d rejected@."
              s.Service.Protocol.submitted s.Service.Protocol.completed
              s.Service.Protocol.racy s.Service.Protocol.race_free
              s.Service.Protocol.failed s.Service.Protocol.rejected;
            Format.printf "  healing   %d workers respawned, %d jobs \
                           quarantined@."
              s.Service.Protocol.workers_restarted
              s.Service.Protocol.quarantined;
            Format.printf "  cache     %d entries, %d hits / %d misses, %d \
                           evictions@."
              s.Service.Protocol.cache_entries s.Service.Protocol.cache_hits
              s.Service.Protocol.cache_misses
              s.Service.Protocol.cache_evictions;
            Format.printf "  sessions  %d seats, %d open, %d opened total@."
              s.Service.Protocol.session_seats
              s.Service.Protocol.open_sessions
              s.Service.Protocol.sessions_opened;
            Format.printf
              "  transport %d corrupt, %d lost, %d stale, %d desynced@."
              s.Service.Protocol.integrity_corrupt
              s.Service.Protocol.integrity_gaps
              s.Service.Protocol.integrity_stale
              s.Service.Protocol.integrity_desync
          end;
          0
      | Error message ->
          Format.eprintf "barracuda: cannot reach the daemon: %s@." message;
          1
  in
  let prometheus =
    Arg.(value & flag
           & info [ "prometheus" ]
               ~doc:"Print the daemon's registry in Prometheus text format.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the raw JSON status line.")
  in
  let shutdown =
    Arg.(value & flag
           & info [ "shutdown" ] ~doc:"Ask the daemon to shut down instead.")
  in
  Cmd.v
    (Cmd.info "svc-status"
       ~doc:"Query (or shut down) a running barracuda daemon.")
    Term.(const run $ socket_term $ prometheus $ json $ shutdown)

let faults_cmd =
  let run seed quick trials json =
    guard @@ fun () ->
    let report =
      Campaign.run ~config:{ Campaign.seed; quick; trials } ()
    in
    Format.printf "%a" Campaign.pp report;
    (match json with
    | None -> ()
    | Some path ->
        let line = Campaign.to_json report in
        if path = "-" then print_endline line
        else begin
          let oc = open_out path in
          output_string oc line;
          output_char oc '\n';
          close_out oc;
          Format.printf "campaign report written to %s@." path
        end);
    if Campaign.ok report then 0 else 1
  in
  let seed =
    Arg.(value & opt int Campaign.default_config.Campaign.seed
           & info [ "seed" ] ~docv:"N"
               ~doc:"Campaign seed; a fixed seed makes the whole campaign \
                     (and its JSON report) bitwise reproducible.")
  in
  let quick =
    Arg.(value & flag
           & info [ "quick" ]
               ~doc:"CI mode: a small case subset and one trial per fault \
                     class.")
  in
  let trials =
    Arg.(value & opt int Campaign.default_config.Campaign.trials
           & info [ "trials" ] ~docv:"N"
               ~doc:"Transport trials per (case, fault class).")
  in
  let json =
    Arg.(value & opt (some string) None
           & info [ "json" ] ~docv:"FILE"
               ~doc:"Also write the campaign report as one JSON line to \
                     $(docv) ($(b,-) for stdout).")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run a seeded fault-injection campaign: transport corruption \
          (bit flips, drops, duplicates, reorder-delays), gpuFI-style \
          architectural flips in the interpreter, and worker crashes \
          against the service scheduler.  Exits non-zero on any silent \
          corruption or unhealed service fault.")
    Term.(const run $ seed $ quick $ trials $ json)

(* ------------------------- fleet mode ---------------------------- *)

let fleet_cmd =
  let run dir seed cases trials batch resume max_trials json =
    guard @@ fun () ->
    if batch < 1 then failwith "--batch must be at least 1";
    let exists = Sys.file_exists (Campaign.Journal.path ~dir) in
    if exists && not resume then
      failwith
        (Printf.sprintf
           "%s already holds a campaign journal; pass --resume to continue \
            it (or point --dir at a fresh directory)"
           dir);
    let j =
      if exists then
        match Campaign.Journal.load ~dir with
        | Ok j -> j
        | Error message -> failwith message
      else begin
        let j =
          Campaign.Journal.create ~seed
            ~cases:(min cases (List.length Bugsuite.Cases.all))
            ~trials
        in
        Campaign.Journal.save ~dir j;
        j
      end
    in
    if resume && not exists then
      failwith (Printf.sprintf "no campaign journal to resume in %s" dir);
    (* Foreground runner: same deterministic stepper the in-daemon
       campaign uses, checkpointing after every batch so a kill at any
       point resumes without losing or double-counting trials. *)
    let baselines = Hashtbl.create 8 in
    let budget =
      match max_trials with
      | None -> max_int
      | Some m -> if m < 0 then 0 else m
    in
    let rec drive done_now =
      if done_now >= budget || Campaign.Journal.complete j then ()
      else begin
        let ran =
          Campaign.Daemon.step ~baselines j
            ~n:(min batch (budget - done_now))
        in
        Campaign.Journal.save ~dir j;
        if ran = 0 then () else drive (done_now + ran)
      end
    in
    drive 0;
    Format.printf "%a" Campaign.Journal.pp j;
    (match json with
    | None -> ()
    | Some path ->
        let line = Campaign.Journal.report_json j in
        if path = "-" then print_endline line
        else begin
          let oc = open_out path in
          output_string oc line;
          output_char oc '\n';
          close_out oc;
          Format.printf "fleet campaign report written to %s@." path
        end);
    let clean =
      List.for_all
        (fun (_, (c : Campaign.Trial.cell)) ->
          c.Campaign.Trial.silent_wrong = 0 && c.Campaign.Trial.crashed = 0)
        j.Campaign.Journal.j_cells
    in
    if not clean then 1
    else if Campaign.Journal.complete j || max_trials <> None then 0
    else 1
  in
  let dir =
    Arg.(required & pos 0 (some string) None
           & info [] ~docv:"DIR" ~doc:"Campaign journal directory.")
  in
  let seed =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.seed
           & info [ "seed" ] ~docv:"N"
               ~doc:"Campaign seed (ignored with --resume: the journal's \
                     seed wins).")
  in
  let cases =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.cases
           & info [ "cases" ] ~docv:"N" ~doc:"Bug-suite cases swept.")
  in
  let trials =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.trials
           & info [ "trials" ] ~docv:"N"
               ~doc:"Trials per (case, fault class).")
  in
  let batch =
    Arg.(value & opt int Campaign.Daemon.default_config.Campaign.Daemon.batch
           & info [ "batch" ] ~docv:"N" ~doc:"Trials per checkpoint.")
  in
  let resume =
    Arg.(value & flag
           & info [ "resume" ]
               ~doc:"Continue the journal already in DIR from its cursor.")
  in
  let max_trials =
    Arg.(value & opt (some int) None
           & info [ "max-trials" ] ~docv:"N"
               ~doc:"Stop after $(docv) trials this run (the journal keeps \
                     the rest for a later --resume).")
  in
  let json =
    Arg.(value & opt (some string) None
           & info [ "json" ] ~docv:"FILE"
               ~doc:"Also write the deterministic campaign report as one \
                     JSON line to $(docv) ($(b,-) for stdout).")
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Run (or --resume) a checkpointed fault campaign in the \
          foreground: the same seeded trial space the in-daemon \
          background campaign sweeps, journaled to disk after every \
          batch so an interrupted campaign resumes exactly where it \
          stopped and its merged report is bitwise identical to an \
          uninterrupted run.")
    Term.(const run $ dir $ seed $ cases $ trials $ batch $ resume
          $ max_trials $ json)

let fleet_status_cmd =
  let run socket dir prometheus json =
    guard @@ fun () ->
    match dir with
    | Some dir -> (
        (* Journal mode: render campaign state straight from disk — no
           daemon required (e.g. after a crash, before the resume). *)
        match Campaign.Journal.load ~dir with
        | Error message ->
            Format.eprintf "barracuda: %s@." message;
            1
        | Ok j ->
            if json then print_endline (Campaign.Journal.report_json j)
            else Format.printf "%a" Campaign.Journal.pp j;
            if Campaign.Journal.silent_wrong j = 0 then 0 else 1)
    | None ->
        if prometheus then
          match Service.Client.metrics ~socket with
          | Ok text ->
              print_string text;
              0
          | Error message ->
              Format.eprintf "barracuda: cannot reach the daemon: %s@."
                message;
              1
        else (
          match Service.Client.status ~socket with
          | Error message ->
              Format.eprintf "barracuda: cannot reach the daemon: %s@."
                message;
              1
          | Ok s ->
              if json then
                print_endline
                  (Service.Protocol.encode_response
                     (Service.Protocol.Status_reply s))
              else begin
                Format.printf "fleet on %s: up %.1f s@." socket
                  (s.Service.Protocol.uptime_ms /. 1000.0);
                Format.printf
                  "  service   %d workers (%d busy), queue %d/%d, %d \
                   submitted, %d rejected@."
                  s.Service.Protocol.workers s.Service.Protocol.busy
                  s.Service.Protocol.queue_depth
                  s.Service.Protocol.queue_capacity
                  s.Service.Protocol.submitted s.Service.Protocol.rejected;
                Format.printf
                  "  healing   %d workers respawned, %d jobs quarantined@."
                  s.Service.Protocol.workers_restarted
                  s.Service.Protocol.quarantined;
                (match s.Service.Protocol.tenants with
                | [] -> Format.printf "  tenants   none seen yet@."
                | tenants ->
                    List.iter
                      (fun (tn : Service.Protocol.tenant_status) ->
                        Format.printf
                          "  tenant %-10s %d queued, %d in flight, %d \
                           submitted, %d done, %d rejected, p50 %.1f ms, \
                           p99 %.1f ms@."
                          tn.Service.Protocol.t_name
                          tn.Service.Protocol.t_queued
                          tn.Service.Protocol.t_inflight
                          tn.Service.Protocol.t_submitted
                          tn.Service.Protocol.t_completed
                          tn.Service.Protocol.t_rejected
                          tn.Service.Protocol.t_p50_ms
                          tn.Service.Protocol.t_p99_ms)
                      tenants);
                (match s.Service.Protocol.campaign with
                | None -> Format.printf "  campaign  not running@."
                | Some c ->
                    Format.printf
                      "  campaign  %d/%d trials (%d batches)%s, \
                       silent-wrong %d%s@."
                      c.Service.Protocol.ca_trials
                      c.Service.Protocol.ca_total
                      c.Service.Protocol.ca_batches
                      (if c.Service.Protocol.ca_paused then
                         " [paused for paying work]"
                       else "")
                      c.Service.Protocol.ca_silent_wrong
                      (if c.Service.Protocol.ca_silent_wrong > 0 then
                         "  ** SILENT CORRUPTION **"
                       else ""))
              end;
              let silent =
                match s.Service.Protocol.campaign with
                | Some c -> c.Service.Protocol.ca_silent_wrong
                | None -> 0
              in
              if silent = 0 then 0 else 1)
  in
  let dir =
    Arg.(value & opt (some string) None
           & info [ "dir" ] ~docv:"DIR"
               ~doc:"Read campaign state from a journal directory instead \
                     of a live daemon.")
  in
  let prometheus =
    Arg.(value & flag
           & info [ "prometheus" ]
               ~doc:"Print the daemon's registry in Prometheus text format.")
  in
  let json =
    Arg.(value & flag
           & info [ "json" ]
               ~doc:"Raw JSON: the status line (daemon mode) or the \
                     deterministic campaign report (--dir mode).")
  in
  Cmd.v
    (Cmd.info "fleet-status"
       ~doc:
         "Live reliability dashboard: per-tenant queue depth, \
          throughput, rejections and latency percentiles joined with \
          background-campaign survival state (silent-wrong must stay \
          0).  Exits non-zero on any silent-wrong trial.")
    Term.(const run $ socket_term $ dir $ prometheus $ json)

let () =
  let doc = "binary-level data race detection for (simulated) CUDA kernels" in
  let info = Cmd.info "barracuda" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd; profile_cmd; instrument_cmd; analyze_cmd; repair_cmd;
            suite_cmd;
            litmus_cmd; table1_cmd; sweep_cmd; replay_cmd; predict_cmd; faults_cmd;
            serve_cmd; submit_cmd; stream_cmd; svc_status_cmd;
            fleet_cmd; fleet_status_cmd;
          ]))
