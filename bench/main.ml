(* The full evaluation harness: regenerates every table and figure of
   the paper's evaluation (§6) plus the ablations DESIGN.md calls out.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe -- table1  -- one section (prefix match)

   Sections:
     6.1         concurrency bug suite scores (BARRACUDA vs Racecheck)
     figure4     memory-fence litmus tests on both GPU models
     table1      the 26 workloads: static insns, threads, memory, races
     figure9     % static instructions instrumented (unopt vs opt)
     figure10    runtime overhead of the full pipeline vs native
     ptvc        ablation: PTVC format census and compression ratio
     queues      ablation: multi-queue logging throughput
     granularity ablation: byte- vs word-granular shadow memory
     pipeline    telemetry per-stage profile -> BENCH_pipeline.json
     predict     predictive analysis over traces -> BENCH_predict.json
     service     batch-daemon throughput scaling -> BENCH_service.json
     stream      streaming-session chunked ingest -> BENCH_stream.json
     static      static race analysis pruning wins -> BENCH_static.json
     repair      automated repair scoreboard + throughput -> BENCH_repair.json
     fleet       multi-tenant soak + background campaign -> BENCH_fleet.json
     bechamel    Bechamel micro-benchmarks (one per table/figure)      *)

module W = Workloads.Workload

let time_it ?(min_time = 0.05) f =
  let samples = ref [] in
  let budget = ref 0.0 in
  let reps = ref 0 in
  while !budget < min_time || !reps < 3 do
    let t0 = Telemetry.Clock.now_ns () in
    f ();
    let d = Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0) in
    samples := d :: !samples;
    budget := !budget +. d;
    incr reps
  done;
  let sorted = List.sort compare !samples in
  List.nth sorted (List.length sorted / 2)

let header title =
  Printf.printf "\n=== %s %s\n%!" title
    (String.make (max 1 (66 - String.length title)) '=')

(* Shared per-workload artifacts: the instrument pass is a pure
   function of the kernel, but a bare pipeline run re-instruments on
   every call.  Sections that run the same workload repeatedly hoist
   one result (computed with the pipeline's default prune/static
   flags) instead of paying parse+analyze per repetition. *)
let inst_cache : (string, Instrument.Pass.result) Hashtbl.t = Hashtbl.create 32

let inst_of (w : W.t) =
  (* workload names repeat across suites (Rodinia bfs vs SHOC bfs) *)
  let key = w.W.suite ^ "/" ^ w.W.name in
  match Hashtbl.find_opt inst_cache key with
  | Some r -> r
  | None ->
      let r = Instrument.Pass.instrument ~prune:true ~static:true w.W.kernel in
      Hashtbl.add inst_cache key r;
      r

(* Time [f] while keeping its last result: sections that need both a
   timing and the run's counters must not pay (or re-randomize) an
   extra untimed run. *)
let time_keeping f =
  let last = ref None in
  let t = time_it (fun () -> last := Some (f ())) in
  (t, Option.get !last)

(* ------------------------------------------------------------------ *)
(* Section 6.1: concurrency bug suite                                  *)

let section_61 () =
  header "Section 6.1: concurrency bug suite (66 programs)";
  let cases = Bugsuite.Cases.all in
  let b = Bugsuite.Harness.run_barracuda cases in
  let r = Bugsuite.Harness.run_racecheck cases in
  Printf.printf "  tool            correct   paper\n";
  Printf.printf "  BARRACUDA        %2d/66    66/66\n" b.Bugsuite.Harness.correct;
  Printf.printf "  CUDA-Racecheck   %2d/66    19/66\n" r.Bugsuite.Harness.correct;
  let hangs =
    List.length
      (List.filter
         (fun (c : Bugsuite.Case.t) ->
           Barracuda.Racecheck.would_hang c.Bugsuite.Case.kernel)
         cases)
  in
  Printf.printf
    "  (racecheck model: misses global memory, blind to fences/atomics,\n\
    \   false-positives on warp lockstep, hangs on %d spinlock tests)\n"
    hangs

(* ------------------------------------------------------------------ *)
(* Figure 4: memory fence litmus tests                                 *)

let section_figure4 () =
  header "Figure 4: memory-fence litmus tests (message passing)";
  let runs = 200_000 in
  Printf.printf "  %-11s %-11s %10s %14s   (paper: 7253 / 0 per 1M, cta/cta)\n"
    "fence1" "fence2" "K520" "GTX Titan X";
  List.iter
    (fun (r : Memmodel.Litmus.figure4_row) ->
      let scope s = Format.asprintf "membar.%a" Ptx.Ast.pp_fence_scope s in
      Printf.printf "  %-11s %-11s %10d %14d   per %d runs\n"
        (scope r.Memmodel.Litmus.fence1)
        (scope r.Memmodel.Litmus.fence2)
        r.Memmodel.Litmus.k520_observations r.Memmodel.Litmus.titan_observations
        r.Memmodel.Litmus.runs)
    (Memmodel.Litmus.figure4 ~runs ())

(* ------------------------------------------------------------------ *)
(* Table 1: the 26 workloads                                           *)

let section_table1 () =
  header "Table 1: benchmarks (scaled grids; paper values in parens)";
  Printf.printf "  %-18s %-9s %7s %9s %11s  %s\n" "benchmark" "suite" "insns"
    "threads" "global KiB" "races found";
  List.iter
    (fun (w : W.t) ->
      let det, _ = W.run_detector w in
      let report = Barracuda.Detector.report det in
      let shared, global = W.racy_word_counts report in
      let races =
        match (shared, global) with
        | 0, 0 -> "-"
        | s, 0 -> Printf.sprintf "%d shared" s
        | 0, g -> Printf.sprintf "%d global" g
        | s, g -> Printf.sprintf "%d shared, %d global" s g
      in
      let m = W.machine w in
      let _ = w.W.setup m in
      let footprint = Simt.Memory.footprint (Simt.Machine.global_memory m) in
      Printf.printf "  %-18s %-9s %7d %9d %11d  %-18s (paper: %s)\n" w.W.name
        w.W.suite
        (Array.length w.W.kernel.Ptx.Ast.body)
        (W.total_threads w)
        (max 1 (footprint / 1024))
        races
        (if w.W.paper.W.p_races = "" then "-" else w.W.paper.W.p_races))
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Figure 9: instrumented static instructions                          *)

let section_figure9 () =
  header "Figure 9: % of static PTX instructions instrumented";
  Printf.printf "  %-18s %-9s %12s %12s %10s %11s\n" "benchmark" "suite"
    "unoptimized" "optimized" "pruned-blk" "pruned-stat";
  List.iter
    (fun (w : W.t) ->
      let unopt =
        Instrument.Pass.instrument ~prune:false ~static:false w.W.kernel
      in
      let opt = Instrument.Pass.instrument w.W.kernel in
      Printf.printf "  %-18s %-9s %11.1f%% %11.1f%% %10d %11d\n" w.W.name
        w.W.suite
        (100.0 *. Instrument.Stats.fraction unopt.Instrument.Pass.stats)
        (100.0 *. Instrument.Stats.fraction opt.Instrument.Pass.stats)
        opt.Instrument.Pass.stats.Instrument.Stats.pruned_block
        opt.Instrument.Pass.stats.Instrument.Stats.pruned_static)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Figure 10: runtime overhead vs native                               *)

let section_figure10 () =
  header "Figure 10: BARRACUDA runtime overhead (normalized to native)";
  Printf.printf "  %-18s %-9s %11s %11s %9s %11s\n" "benchmark" "suite"
    "native(ms)" "brrcda(ms)" "overhead" "insn ratio";
  List.iter
    (fun (w : W.t) ->
      let native, nr = time_keeping (fun () -> W.run_native w) in
      let native_insns = nr.Simt.Machine.dyn_instructions in
      let inst = inst_of w in
      let piped, pr = time_keeping (fun () -> W.run_pipeline ~inst w) in
      let piped_insns =
        pr.Gpu_runtime.Pipeline.machine_result.Simt.Machine.dyn_instructions
      in
      Printf.printf "  %-18s %-9s %11.2f %11.2f %8.1fx %10.1fx\n" w.W.name
        w.W.suite (1000.0 *. native) (1000.0 *. piped) (piped /. native)
        (float_of_int piped_insns /. float_of_int (max 1 native_insns)))
    Workloads.Registry.all;
  Printf.printf
    "  (overheads compress vs the paper's 10-3700x because the native\n\
    \   baseline here is itself a simulator; the per-benchmark ordering\n\
    \   and the insn-ratio shape are the comparable signals)\n"

(* ------------------------------------------------------------------ *)
(* Ablation: PTVC compression                                          *)

let section_ptvc () =
  header "Ablation: per-thread VC compression (paper 4.3.1)";
  Printf.printf "  %-18s %10s %9s %8s %9s %12s %14s\n" "benchmark" "converged"
    "diverged" "nested" "sparse" "ptvc bytes" "full-vc bytes";
  let tc = ref 0 and td = ref 0 and tn = ref 0 and ts = ref 0 in
  List.iter
    (fun (w : W.t) ->
      let det, _ = W.run_detector w in
      let s = Barracuda.Detector.stats det in
      tc := !tc + s.Barracuda.Detector.ptvc_converged;
      td := !td + s.Barracuda.Detector.ptvc_diverged;
      tn := !tn + s.Barracuda.Detector.ptvc_nested;
      ts := !ts + s.Barracuda.Detector.ptvc_sparse;
      Printf.printf "  %-18s %10d %9d %8d %9d %12d %14d\n" w.W.name
        s.Barracuda.Detector.ptvc_converged s.Barracuda.Detector.ptvc_diverged
        s.Barracuda.Detector.ptvc_nested s.Barracuda.Detector.ptvc_sparse
        s.Barracuda.Detector.ptvc_bytes s.Barracuda.Detector.full_vc_bytes)
    Workloads.Registry.all;
  let total = !tc + !td + !tn + !ts in
  if total > 0 then
    Printf.printf
      "  format census across all records: %.1f%% converged, %.1f%% diverged,\n\
      \  %.1f%% nested, %.1f%% sparse (paper: ~90%% warp-uniform)\n"
      (100.0 *. float_of_int !tc /. float_of_int total)
      (100.0 *. float_of_int !td /. float_of_int total)
      (100.0 *. float_of_int !tn /. float_of_int total)
      (100.0 *. float_of_int !ts /. float_of_int total)

(* ------------------------------------------------------------------ *)
(* Ablation: queue count throughput                                    *)

let section_queues () =
  header "Ablation: GPU->host queue throughput vs queue count (paper 4.2)";
  (* The paper found ~1.1-1.5 queues per SM optimal because parallel
     producers contend on a single queue's indices.  This host exposes a
     single core, so we measure the single-threaded sharding cost: the
     producer round-robins blocks across [nq] queues and the consumer
     drains them all, which is exactly the pipeline's structure. *)
  let total = 200_000 in
  let fill buf off =
    Bytes.fill buf off Gpu_runtime.Record.wire_size 'x'
  in
  Printf.printf "  %7s %12s %14s %16s\n" "queues" "records/s" "records"
    "high watermark";
  List.iter
    (fun nq ->
      let queues =
        Array.init nq (fun _ -> Gpu_runtime.Queue.create ~capacity:1024)
      in
      let t0 = Telemetry.Clock.now_ns () in
      let consumed = ref 0 in
      for i = 0 to total - 1 do
        let q = queues.(i mod nq) in
        while not (Gpu_runtime.Queue.push_into q fill) do
          (* backpressure: drain the full queue *)
          if Gpu_runtime.Queue.peek q >= 0 then begin
            Gpu_runtime.Queue.release q;
            incr consumed
          end
        done
      done;
      Array.iter
        (fun q ->
          let rec drain () =
            if Gpu_runtime.Queue.peek q >= 0 then begin
              Gpu_runtime.Queue.release q;
              incr consumed;
              drain ()
            end
          in
          drain ())
        queues;
      let dt = Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0) in
      let high =
        Array.fold_left
          (fun acc q -> max acc (Gpu_runtime.Queue.high_watermark q))
          0 queues
      in
      assert (!consumed = total);
      Printf.printf "  %7d %12.0f %14d %16d\n" nq
        (float_of_int total /. dt)
        total high)
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Ablation: shadow granularity                                        *)

let section_granularity () =
  header "Ablation: shadow-memory granularity (byte vs word, paper 4.3.3)";
  Printf.printf "  %-18s %12s %12s %10s %10s\n" "benchmark" "byte cells"
    "word cells" "byte(ms)" "word(ms)";
  let subset = [ "backprop"; "dxtc"; "block_reduce"; "needle" ] in
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let run g () =
        let m = W.machine w in
        let args = w.W.setup m in
        let config =
          { Barracuda.Detector.default_config with shadow_granularity = g }
        in
        let det, _ = Barracuda.Detector.run ~config ~machine:m w.W.kernel args in
        Barracuda.Detector.stats det
      in
      let t1, s1 = time_keeping (run 1) in
      let t4, s4 = time_keeping (run 4) in
      Printf.printf "  %-18s %12d %12d %10.2f %10.2f\n" name
        s1.Barracuda.Detector.shadow_cells s4.Barracuda.Detector.shadow_cells
        (1000.0 *. t1) (1000.0 *. t4))
    subset

(* ------------------------------------------------------------------ *)
(* Scaling: PTVC compression and detection cost vs grid size           *)

let section_scaling () =
  header "Scaling: detection cost and PTVC compression vs thread count";
  (* a representative kernel: tiled stencil with a barrier and a
     divergent fixup, scaled by block count *)
  let build_kernel () =
    let b =
      Ptx.Builder.create ~params:[ "t_in"; "t_out" ]
        ~shared:[ ("tile", 128 * 4) ]
        "scaling_stencil"
    in
    let open Ptx.Builder in
    let tid = Ptx.Ast.Sreg Ptx.Ast.Tid in
    let g = global_tid b in
    let v = Workloads.Common.load_global b ~base:"t_in" (reg g) in
    let sa = Workloads.Common.shared_addr b ~base:"tile" tid in
    st ~space:Ptx.Ast.Shared b (reg sa) (reg v);
    bar b;
    let acc = fresh_reg b in
    mov b acc (reg v);
    if_ b Ptx.Ast.C_gt tid (imm 0) (fun b ->
        let la = fresh_reg ~cls:"rd" b in
        mad b la tid (imm 4) (sym "tile");
        binop b Ptx.Ast.B_sub la (reg la) (imm 4);
        let l = fresh_reg b in
        ld ~space:Ptx.Ast.Shared b l (reg la);
        binop b Ptx.Ast.B_add acc (reg acc) (reg l));
    Workloads.Common.store_global_result b ~base:"t_out" ~index:(reg g)
      (reg acc);
    finish b
  in
  let kernel = build_kernel () in
  Printf.printf "  %8s %10s %12s %12s %16s %9s\n" "threads" "time(ms)"
    "records" "ptvc bytes" "full-vc bytes" "ratio";
  List.iter
    (fun blocks ->
      let layout =
        Vclock.Layout.make ~warp_size:32 ~threads_per_block:128 ~blocks
      in
      let n = Vclock.Layout.total_threads layout in
      let run () =
        let m = Simt.Machine.create ~layout () in
        let t_in = Simt.Machine.alloc_global m (4 * n) in
        let t_out = Simt.Machine.alloc_global m (4 * n) in
        Barracuda.Detector.run ~machine:m kernel
          [| Int64.of_int t_in; Int64.of_int t_out |]
      in
      let dt = time_it (fun () -> ignore (run ())) in
      let det, _ = run () in
      let s = Barracuda.Detector.stats det in
      Printf.printf "  %8d %10.1f %12d %12d %16d %8.0fx\n" n (1000.0 *. dt)
        s.Barracuda.Detector.records_processed s.Barracuda.Detector.ptvc_bytes
        s.Barracuda.Detector.full_vc_bytes
        (float_of_int s.Barracuda.Detector.full_vc_bytes
        /. float_of_int (max 1 s.Barracuda.Detector.ptvc_bytes)))
    [ 2; 8; 32; 128 ];
  Printf.printf
    "  (full per-thread VCs grow as threads^2; the compressed PTVCs grow\n\
    \   linearly in warps — the gap is what makes million-thread grids\n\
    \   tractable, 4 MB vs 4 TB at 10^6 threads)\n"

(* ------------------------------------------------------------------ *)
(* Parallel host: one consumer domain per queue                        *)

let section_parallel () =
  header "Parallel host: concurrent queue draining (paper 4.3)";
  Printf.printf "  %-18s %13s %12s %12s %8s\n" "benchmark" "sequential(ms)"
    "parallel(ms)" "races(eq?)" "queues";
  let subset = [ "backprop"; "pathfinder"; "dxtc"; "d_scan"; "d_reduce" ] in
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let config = { Gpu_runtime.Pipeline.default_config with queues = 2 } in
      let inst = inst_of w in
      let run_seq () =
        let m = W.machine w in
        let args = w.W.setup m in
        Gpu_runtime.Pipeline.run ~config ~inst ~machine:m w.W.kernel args
      in
      let run_par () =
        let m = W.machine w in
        let args = w.W.setup m in
        Gpu_runtime.Pipeline.run_parallel ~config ~inst ~machine:m w.W.kernel
          args
      in
      let t_seq, sr = time_keeping run_seq in
      let t_par, pr = time_keeping run_par in
      let verdict r =
        Barracuda.Report.has_race (Gpu_runtime.Pipeline.report r)
      in
      let same = verdict sr = verdict pr in
      Printf.printf "  %-18s %13.2f %12.2f %12b %8d\n" name (1000.0 *. t_seq)
        (1000.0 *. t_par) same config.Gpu_runtime.Pipeline.queues)
    subset;
  Printf.printf
    "  (this host has a single core, so the concurrent drain pays context\n\
    \   switches without gaining parallel speedup; the point here is the\n\
    \   protocol — verdicts match the sequential pipeline)\n"

(* ------------------------------------------------------------------ *)
(* Telemetry: per-stage pipeline profile -> BENCH_pipeline.json        *)

(* Scan a previously checked-in BENCH json for a gauge value without a
   parser: find the metric name, then the "value": field after it.
   Returns [None] when the file or key is absent (first run). *)
let scan_baseline path key =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in path in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let needle = "\"" ^ key ^ "\"" in
    let rec find_sub from pat =
      if from + String.length pat > String.length s then None
      else if String.sub s from (String.length pat) = pat then Some from
      else find_sub (from + 1) pat
    in
    match find_sub 0 needle with
    | None -> None
    | Some at -> (
        match find_sub at "\"value\":" with
        | None -> None
        | Some v ->
            let i = ref (v + 8) in
            while !i < String.length s && s.[!i] = ' ' do incr i done;
            let start = !i in
            while
              !i < String.length s
              && (match s.[!i] with '0' .. '9' | '-' -> true | _ -> false)
            do
              incr i
            done;
            int_of_string_opt (String.sub s start (!i - start)))

(* The transport hot path in isolation: serialize records straight into
   ring slots and consume them in place with [feed_record], telemetry
   off.  End-to-end pipeline throughput is execute-dominated, so this is
   the number the in-place refactor is accountable for. *)
let hot_pump_records_per_sec () =
  let layout =
    Vclock.Layout.make ~warp_size:32 ~threads_per_block:64 ~blocks:2
  in
  let b = Ptx.Builder.create ~params:[ "g" ] "bench_hot" in
  Ptx.Builder.st b (Ptx.Builder.sym "g") (Ptx.Builder.imm 1);
  let k = Ptx.Builder.finish b in
  let det = Barracuda.Detector.create ~layout k in
  let q = Gpu_runtime.Queue.create ~capacity:1024 in
  let buf = Gpu_runtime.Queue.buffer q in
  let ws = layout.Vclock.Layout.warp_size in
  let addrs = Array.init ws (fun i -> 4 * i) in
  let values = Array.make ws 1L in
  let mask = (1 lsl ws) - 1 in
  let pump n =
    for _ = 1 to n do
      let w = Gpu_runtime.Queue.try_reserve q in
      let pos = Gpu_runtime.Queue.offset_of q w in
      Barracuda.Wire.write_access buf ~pos ~kind:Simt.Event.Store
        ~space:Ptx.Ast.Global ~width:4 ~mask ~warp:0 ~insn:0 ~addrs;
      Barracuda.Wire.seal buf ~pos ~seq:w;
      Gpu_runtime.Queue.commit q w;
      let off = Gpu_runtime.Queue.peek q in
      Barracuda.Detector.feed_record det ~values buf ~pos:off;
      Gpu_runtime.Queue.release q
    done
  in
  pump 2_000 (* warm up shadow pages and lazy telemetry handles *);
  let n = 200_000 in
  let minor0 = Gc.minor_words () in
  let t0 = Telemetry.Clock.now_ns () in
  pump n;
  let dt = Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0) in
  let per_record = (Gc.minor_words () -. minor0) /. float_of_int n in
  Printf.printf "  hot path allocates %.2f minor words/record\n" per_record;
  float_of_int n /. dt

let bench_json = "BENCH_pipeline.json"

(* BENCH_*.json outputs are gitignored artifacts; the committed
   reference CI compares against lives beside the bench source. *)
let baseline_json = "bench/baseline_pipeline.json"
let key_hot = "barracuda_bench_hot_records_per_sec"
let key_e2e = "barracuda_bench_records_per_sec"

let warn_on_regression ?(baseline = baseline_json) ~key ~label ~fresh () =
  match scan_baseline baseline key with
  | Some old when old > 0 && fresh < 0.75 *. float_of_int old ->
      (* non-fatal: CI surfaces this as a warning annotation, the build
         stays green (shared runners are noisy) *)
      Printf.printf
        "::warning::%s regressed >25%% vs checked-in baseline (%d -> %.0f \
         records/s)\n"
        label old fresh
  | _ -> ()

let section_pipeline () =
  header "Telemetry: per-stage pipeline profile (BENCH_pipeline.json)";
  let subset = [ "backprop"; "pathfinder"; "dxtc"; "d_scan"; "hashtable" ] in
  let registry = Telemetry.Registry.default in
  Telemetry.Registry.set_enabled true;
  Telemetry.Registry.reset registry;
  let t0 = Telemetry.Clock.now_ns () in
  List.iter
    (fun name -> ignore (W.run_pipeline (Workloads.Registry.find name)))
    subset;
  let wall_ns = Telemetry.Clock.elapsed_ns ~since:t0 in
  Telemetry.Registry.set_enabled false;
  let totals = Telemetry.Span.totals ~registry () in
  Printf.printf "  %-12s %8s %12s %8s\n" "stage" "calls" "total ms" "share";
  List.iter
    (fun (stage, (calls, ns)) ->
      Printf.printf "  %-12s %8d %12.2f %7.1f%%\n" stage calls
        (Telemetry.Clock.ns_to_ms ns)
        (100.0 *. Int64.to_float ns /. Int64.to_float (max 1L wall_ns)))
    totals;
  let records =
    Telemetry.Registry.find_counter registry "barracuda_pipeline_records_total"
  in
  Printf.printf "  records shipped %d, queue pushes %d, detector checks %d\n"
    records
    (Telemetry.Registry.find_counter registry "barracuda_queue_pushes_total")
    (Telemetry.Registry.find_counter registry "barracuda_detector_checks_total");
  let e2e =
    float_of_int records /. Telemetry.Clock.ns_to_s wall_ns
  in
  let hot = hot_pump_records_per_sec () in
  Printf.printf "  end-to-end  %12.0f records/s (execute-dominated)\n" e2e;
  Printf.printf "  hot path    %12.0f records/s (queue + in-place detect)\n"
    hot;
  warn_on_regression ~key:key_e2e ~label:"pipeline end-to-end throughput"
    ~fresh:e2e ();
  warn_on_regression ~key:key_hot ~label:"pipeline hot-path throughput"
    ~fresh:hot ();
  Telemetry.Registry.set_enabled true;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"End-to-end pipeline throughput over the bench subset"
       registry key_e2e)
    (int_of_float e2e);
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:
         "Steady-state transport throughput: records serialized into ring \
          slots and consumed in place"
       registry key_hot)
    (int_of_float hot);
  Telemetry.Registry.set_enabled false;
  Telemetry.Export.write_json ~path:bench_json registry;
  Printf.printf "  wrote %s (%d workloads)\n" bench_json (List.length subset)

(* ------------------------------------------------------------------ *)
(* Predictive analysis over recorded traces -> BENCH_predict.json      *)

let section_predict () =
  header "Predictive race analysis (BENCH_predict.json)";
  let registry = Telemetry.Registry.default in
  Telemetry.Registry.set_enabled true;
  Telemetry.Registry.reset registry;
  Printf.printf "  %-28s %6s %6s %6s %5s %5s %5s %8s\n" "case" "ops" "accs"
    "pairs" "obs" "pred" "conf" "ms";
  let cases =
    Bugsuite.Cases.predictive
    @ List.filter
        (fun (c : Bugsuite.Case.t) ->
          List.mem c.Bugsuite.Case.name
            [ "ww_global_inter_block"; "flag_handoff_gl_gl"; "ww_global_disjoint" ])
        Bugsuite.Cases.all
  in
  List.iter
    (fun (case : Bugsuite.Case.t) ->
      let m = Simt.Machine.create ~layout:case.Bugsuite.Case.layout () in
      let args = case.Bugsuite.Case.setup m in
      let ops, _ =
        Gtrace.Infer.run ~layout:case.Bugsuite.Case.layout m
          case.Bugsuite.Case.kernel args
      in
      let t0 = Telemetry.Clock.now_ns () in
      let a = Predict.Analysis.run ~layout:case.Bugsuite.Case.layout ops in
      let ms = Telemetry.Clock.ns_to_ms (Telemetry.Clock.elapsed_ns ~since:t0) in
      Printf.printf "  %-28s %6d %6d %6d %5d %5d %5d %8.2f\n"
        case.Bugsuite.Case.name a.Predict.Analysis.op_count
        a.Predict.Analysis.access_count a.Predict.Analysis.pairs_examined
        a.Predict.Analysis.observed_race_count
        (Predict.Analysis.predicted_count a)
        (Predict.Analysis.confirmed_count a)
        ms)
    cases;
  Telemetry.Registry.set_enabled false;
  List.iter
    (fun (stage, (calls, ns)) ->
      if String.length stage >= 8 && String.sub stage 0 8 = "predict." then
        Printf.printf "  span %-20s %6d calls %10.2f ms\n" stage calls
          (Telemetry.Clock.ns_to_ms ns))
    (Telemetry.Span.totals ~registry ());
  Telemetry.Export.write_json ~path:"BENCH_predict.json" registry;
  Printf.printf "  wrote BENCH_predict.json (%d cases)\n" (List.length cases)

(* ------------------------------------------------------------------ *)
(* Race-checking service throughput -> BENCH_service.json              *)

(* A small kernel mix (4 distinct sources) submitted repeatedly, so
   the artifact cache sees both cold misses and a hot steady state. *)
let kernel_mix () =
  List.filteri (fun i _ -> i < 4) Bugsuite.Cases.all
  |> List.map (fun (c : Bugsuite.Case.t) ->
         let layout = c.Bugsuite.Case.layout in
         {
           (Service.Protocol.submit_defaults ~kind:Service.Protocol.Check
              (Format.asprintf "%a" Ptx.Printer.pp_kernel
                 c.Bugsuite.Case.kernel))
           with
           Service.Protocol.layout =
             Some
               ( layout.Vclock.Layout.blocks,
                 layout.Vclock.Layout.threads_per_block,
                 layout.Vclock.Layout.warp_size );
           args =
             List.map
               (fun _ -> "alloc:256")
               c.Bugsuite.Case.kernel.Ptx.Ast.params;
         })
  |> Array.of_list

let section_service () =
  header "Race-checking service: batch throughput (BENCH_service.json)";
  let clients = 8 and jobs_per_client = 12 in
  let mix = kernel_mix () in
  let percentile sorted p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let run_at workers =
    let socket =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "barracuda-bench-%d-%d.sock" (Unix.getpid ()) workers)
    in
    (try Unix.unlink socket with Unix.Unix_error _ -> ());
    let server =
      Service.Server.start
        ~config:
          {
            Service.Server.default_config with
            Service.Server.socket_path = socket;
            workers;
            queue_capacity = 128;
          }
        ()
    in
    if not (Service.Client.wait_ready ~socket ()) then
      failwith "service did not come up";
    let t0 = Telemetry.Clock.now_ns () in
    let client c =
      Array.init jobs_per_client (fun j ->
          let sub = mix.((c + (j * clients)) mod Array.length mix) in
          let s0 = Telemetry.Clock.now_ns () in
          let detect_ms =
            match Service.Client.submit ~retries:50 ~socket sub with
            | Ok (Service.Protocol.Result { outcome; _ }) ->
                outcome.Service.Protocol.detect_ms
            | Ok r ->
                Printf.ksprintf failwith "bench job got %s"
                  (Service.Protocol.encode_response r)
            | Error e -> Printf.ksprintf failwith "bench job: %s" e
          in
          ( Telemetry.Clock.ns_to_ms (Telemetry.Clock.elapsed_ns ~since:s0),
            detect_ms ))
    in
    let domains =
      List.init clients (fun c -> Domain.spawn (fun () -> client c))
    in
    let samples =
      List.concat_map (fun d -> Array.to_list (Domain.join d)) domains
    in
    let latencies = List.map fst samples in
    (* per-job time inside the detector, as reported by the worker —
       distinguishes detection cost from queueing/parse/cache effects
       in the end-to-end latency (cache hits report 0) *)
    let detects = List.map snd samples in
    let wall_s = Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0) in
    let st =
      match Service.Client.status ~socket with
      | Ok s -> s
      | Error e -> Printf.ksprintf failwith "status: %s" e
    in
    Service.Server.stop server;
    let jobs = clients * jobs_per_client in
    let sorted = Array.of_list (List.sort compare latencies) in
    let dsorted = Array.of_list (List.sort compare detects) in
    let lookups = st.Service.Protocol.cache_hits + st.Service.Protocol.cache_misses in
    ( workers,
      jobs,
      float_of_int jobs /. wall_s,
      percentile sorted 0.5,
      percentile sorted 0.99,
      percentile dsorted 0.5,
      percentile dsorted 0.99,
      float_of_int st.Service.Protocol.cache_hits /. float_of_int (max 1 lookups)
    )
  in
  Printf.printf "  %7s %6s %14s %9s %9s %10s %10s %10s\n" "workers" "jobs"
    "jobs/s" "p50 ms" "p99 ms" "det p50" "det p99" "cache hit";
  let rows = List.map run_at [ 1; 2; 4; 8 ] in
  List.iter
    (fun (workers, jobs, thr, p50, p99, d50, d99, hit) ->
      Printf.printf "  %7d %6d %14.1f %9.2f %9.2f %10.2f %10.2f %9.1f%%\n"
        workers jobs thr p50 p99 d50 d99 (100.0 *. hit))
    rows;
  let json =
    Telemetry.Json.Obj
      [
        ("version", Telemetry.Json.Int 1);
        ("clients", Telemetry.Json.Int clients);
        ("jobs_per_client", Telemetry.Json.Int jobs_per_client);
        ("kernel_mix", Telemetry.Json.Int (Array.length mix));
        ( "scaling",
          Telemetry.Json.List
            (List.map
               (fun (workers, jobs, thr, p50, p99, d50, d99, hit) ->
                 Telemetry.Json.Obj
                   [
                     ("workers", Telemetry.Json.Int workers);
                     ("jobs", Telemetry.Json.Int jobs);
                     ("throughput_jobs_per_s", Telemetry.Json.Float thr);
                     ("p50_ms", Telemetry.Json.Float p50);
                     ("p99_ms", Telemetry.Json.Float p99);
                     ("detect_p50_ms", Telemetry.Json.Float d50);
                     ("detect_p99_ms", Telemetry.Json.Float d99);
                     ("cache_hit_rate", Telemetry.Json.Float hit);
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_service.json" in
  output_string oc (Telemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote BENCH_service.json (%d worker counts)\n"
    (List.length rows)

(* ------------------------------------------------------------------ *)
(* Sharded detection engine -> BENCH_shard.json                        *)

let shard_baseline_json = "bench/baseline_shard.json"
let key_shard_serial = "barracuda_bench_shard_serial_records_per_sec"
let key_shard8_detect = "barracuda_bench_shard8_detect_records_per_sec"

let section_shard () =
  header "Sharded detection engine: broadcast transport (BENCH_shard.json)";
  let w = Workloads.Registry.find "dxtc" in
  let run_serial () =
    let m = W.machine w in
    let args = w.W.setup m in
    let r =
      Gpu_runtime.Pipeline.run
        ~config:{ Gpu_runtime.Pipeline.default_config with queues = 1 }
        ~machine:m w.W.kernel args
    in
    ( r.Gpu_runtime.Pipeline.queue_stats.Gpu_runtime.Pipeline.records,
      r.Gpu_runtime.Pipeline.detect_ns,
      Barracuda.Report.has_race (Gpu_runtime.Pipeline.report r) )
  in
  let run_sharded shards () =
    let m = W.machine w in
    let args = w.W.setup m in
    let r =
      Shard.Pipeline.run_sharded
        ~config:{ Shard.Pipeline.default_config with Shard.Pipeline.shards }
        ~machine:m w.W.kernel args
    in
    ( r.Shard.Pipeline.queue_stats.Gpu_runtime.Pipeline.records,
      r.Shard.Pipeline.detect_ns,
      Barracuda.Report.has_race r.Shard.Pipeline.report )
  in
  (* e2e throughput counts the whole job (simulation included);
     detect throughput counts only the busiest shard's time inside the
     detector — the number the partitioned checks are accountable for,
     and the one comparable to the isolated transport pump *)
  let measure run =
    ignore (run ()) (* warm shadow pages / code paths *);
    let t0 = Telemetry.Clock.now_ns () in
    let records, detect_ns, racy = run () in
    let wall = Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0) in
    let detect_s = Int64.to_float detect_ns /. 1e9 in
    ( float_of_int records /. wall,
      float_of_int records /. Float.max 1e-9 detect_s,
      Telemetry.Clock.ns_to_ms detect_ns,
      racy )
  in
  Printf.printf "  %-8s %15s %17s %11s %8s\n" "config" "e2e rec/s"
    "detect rec/s" "detect ms" "races";
  let _, _, _, serial_racy = measure run_serial in
  let serial_e2e, serial_det, serial_ms, _ = measure run_serial in
  Printf.printf "  %-8s %15.0f %17.0f %11.2f %8b\n" "serial" serial_e2e
    serial_det serial_ms serial_racy;
  let rows =
    List.map
      (fun shards ->
        let e2e, det, ms, racy = measure (run_sharded shards) in
        Printf.printf "  %-8s %15.0f %17.0f %11.2f %8b\n"
          (Printf.sprintf "%d-shard" shards)
          e2e det ms (racy = serial_racy);
        (shards, e2e, det, ms))
      [ 1; 2; 4; 8 ]
  in
  let hot = hot_pump_records_per_sec () in
  let _, _, shard8_det, _ = List.find (fun (s, _, _, _) -> s = 8) rows in
  Printf.printf "  transport pump %12.0f records/s (isolated, serial)\n" hot;
  Printf.printf
    "  8-shard detect throughput is %.2fx the isolated transport pump\n"
    (shard8_det /. hot);
  Printf.printf
    "  (single-core host: the broadcast engine pays one 280-byte blit per\n\
    \   shard per record without gaining parallel speedup; the partitioned\n\
    \   checks are what shrink per-shard detect time — see EXPERIMENTS.md)\n";
  let registry = Telemetry.Registry.default in
  Telemetry.Registry.reset registry;
  Telemetry.Registry.set_enabled true;
  (* one instrumented 8-shard run so the engine's own telemetry —
     per-shard record counters, broadcast-epoch histogram, imbalance
     gauge — lands in the exported artifact *)
  ignore (run_sharded 8 ());
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Serial pipeline end-to-end throughput on the shard bench workload"
       registry key_shard_serial)
    (int_of_float serial_e2e);
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"8-shard detection throughput (records over busiest shard time)"
       registry key_shard8_detect)
    (int_of_float shard8_det);
  List.iter
    (fun (shards, e2e, _, _) ->
      Telemetry.Metric.gauge_set
        (Telemetry.Registry.gauge
           ~help:"Sharded pipeline end-to-end throughput" registry
           (Printf.sprintf "barracuda_bench_shard%d_records_per_sec" shards))
        (int_of_float e2e))
    rows;
  Telemetry.Registry.set_enabled false;
  warn_on_regression ~baseline:shard_baseline_json ~key:key_shard_serial
    ~label:"shard bench serial throughput" ~fresh:serial_e2e ();
  warn_on_regression ~baseline:shard_baseline_json ~key:key_shard8_detect
    ~label:"8-shard detection throughput" ~fresh:shard8_det ();
  Telemetry.Export.write_json ~path:"BENCH_shard.json" registry;
  Printf.printf "  wrote BENCH_shard.json\n"

(* ------------------------------------------------------------------ *)
(* Streaming sessions -> BENCH_stream.json                             *)

let stream_baseline_json = "bench/baseline_stream.json"
let key_stream1 = "barracuda_bench_stream1_records_per_sec"

let percentile p samples =
  match List.sort compare samples with
  | [] -> 0.0
  | sorted ->
      let a = Array.of_list sorted in
      a.(min (Array.length a - 1)
           (int_of_float (p *. float_of_int (Array.length a - 1))))

let section_stream () =
  header "Streaming sessions: chunked ingest (BENCH_stream.json)";
  let w = Workloads.Registry.find "needle" in
  (* record the wire stream once; every session replays the same bytes,
     so the measurement is pure ingest + detect, no simulation *)
  let m = W.machine w in
  let args = w.W.setup m in
  let buf = Buffer.create 65536 in
  let r =
    Gpu_runtime.Session.run_stream ~inst:(inst_of w) ~capture:buf ~machine:m
      w.W.kernel args
  in
  let bytes = Buffer.contents buf in
  let records = r.Gpu_runtime.Session.sr_records in
  let chunk = 8192 in
  (* one full session: feed in chunks, checkpoint every 4 chunks,
     returning per-checkpoint latencies (close included: it is the
     final checkpoint) *)
  let run_session () =
    let st =
      Gpu_runtime.Session.open_stream ~layout:w.W.layout w.W.kernel
    in
    let total = String.length bytes in
    let pos = ref 0 and i = ref 0 in
    let lat = ref [] in
    let checkpointed f =
      let t0 = Telemetry.Clock.now_ns () in
      let v = f () in
      lat :=
        Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0)
        :: !lat;
      v
    in
    while !pos < total do
      let len = min chunk (total - !pos) in
      Gpu_runtime.Session.feed_chunk st ~pos:!pos ~len bytes;
      pos := !pos + len;
      incr i;
      if !i mod 4 = 0 then
        ignore (checkpointed (fun () -> Gpu_runtime.Session.checkpoint st))
    done;
    ignore (checkpointed (fun () -> Gpu_runtime.Session.close_stream st));
    !lat
  in
  ignore (run_session ()) (* warm shadow pages / lazy telemetry *);
  Printf.printf "  %9s %13s %15s %15s\n" "sessions" "records/s"
    "checkpoint p50" "checkpoint p99";
  let rows =
    List.map
      (fun sessions ->
        let t0 = Telemetry.Clock.now_ns () in
        let doms =
          Array.init sessions (fun _ -> Domain.spawn run_session)
        in
        let lats = Array.to_list doms |> List.concat_map Domain.join in
        let wall =
          Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0)
        in
        let rps = float_of_int (sessions * records) /. wall in
        let p50 = percentile 0.50 lats and p99 = percentile 0.99 lats in
        Printf.printf "  %9d %13.0f %13.2fms %13.2fms\n" sessions rps
          (1000.0 *. p50) (1000.0 *. p99);
        (sessions, rps, p50, p99))
      [ 1; 2; 4 ]
  in
  let registry = Telemetry.Registry.default in
  Telemetry.Registry.reset registry;
  Telemetry.Registry.set_enabled true;
  List.iter
    (fun (sessions, rps, p50, p99) ->
      let set name help v =
        Telemetry.Metric.gauge_set
          (Telemetry.Registry.gauge ~help registry
             (Printf.sprintf "barracuda_bench_stream%d_%s" sessions name))
          v
      in
      set "records_per_sec"
        "Aggregate streaming-session ingest throughput" (int_of_float rps);
      set "checkpoint_p50_us" "Median checkpoint latency"
        (int_of_float (1e6 *. p50));
      set "checkpoint_p99_us" "p99 checkpoint latency"
        (int_of_float (1e6 *. p99)))
    rows;
  Telemetry.Registry.set_enabled false;
  let _, rps1, _, _ = List.find (fun (s, _, _, _) -> s = 1) rows in
  warn_on_regression ~baseline:stream_baseline_json ~key:key_stream1
    ~label:"streaming-session ingest throughput" ~fresh:rps1 ();
  Telemetry.Export.write_json ~path:"BENCH_stream.json" registry;
  Printf.printf "  wrote BENCH_stream.json (%d records/session)\n" records

(* ------------------------------------------------------------------ *)
(* Static race analysis -> BENCH_static.json                           *)

let static_baseline_json = "bench/baseline_static.json"
let key_static_on = "barracuda_bench_static_on_accesses_per_sec"
let key_static_pruned = "barracuda_bench_static_pruned_insns"

let section_static () =
  header "Static race analysis: pruning and throughput (BENCH_static.json)";
  (* Per-tier pruning census over a subset with real static wins
     (lavamd drops from 20.7% to 1.7% instrumented). *)
  let subset = [ "lavamd"; "nn"; "hotspot"; "backprop"; "d_scan"; "dxtc" ] in
  Printf.printf "  %-12s %8s %10s %11s %11s %9s\n" "benchmark" "insns"
    "accesses" "pruned-stat" "pruned-blk" "analyze";
  let tot_insns = ref 0 and tot_static = ref 0 and tot_block = ref 0 in
  let tot_analyze_ms = ref 0.0 in
  List.iter
    (fun name ->
      let w = Workloads.Registry.find name in
      let analyze_s = time_it (fun () -> ignore (Static.Analysis.analyze w.W.kernel)) in
      let a = Static.Analysis.analyze w.W.kernel in
      let safe, racy, unknown = Static.Analysis.counts a in
      let opt = Instrument.Pass.instrument w.W.kernel in
      let st = opt.Instrument.Pass.stats in
      tot_insns := !tot_insns + st.Instrument.Stats.total_static;
      tot_static := !tot_static + st.Instrument.Stats.pruned_static;
      tot_block := !tot_block + st.Instrument.Stats.pruned_block;
      tot_analyze_ms := !tot_analyze_ms +. (analyze_s *. 1e3);
      Printf.printf "  %-12s %8d %10d %11d %11d %7.2fms\n" w.W.name
        st.Instrument.Stats.total_static
        (safe + racy + unknown)
        st.Instrument.Stats.pruned_static st.Instrument.Stats.pruned_block
        (analyze_s *. 1e3))
    subset;
  Printf.printf "  %-12s %8d %10s %11d %11d %7.2fms\n" "total" !tot_insns ""
    !tot_static !tot_block !tot_analyze_ms;
  Printf.printf "  static tier prunes %d of %d static instructions (%.1f%%)\n"
    !tot_static !tot_insns
    (100.0 *. float_of_int !tot_static /. float_of_int (max 1 !tot_insns));
  (* End-to-end effect: the same workload through the full pipeline
     with the static tier off vs on.  The numerator is the unpruned
     record count both ways — the logical work checked — so the two
     throughput numbers are comparable. *)
  let e2e name =
    let w = Workloads.Registry.find name in
    let run static_prune =
      let m = W.machine w in
      let args = w.W.setup m in
      let r =
        Gpu_runtime.Pipeline.run
          ~config:{ Gpu_runtime.Pipeline.default_config with static_prune }
          ~machine:m w.W.kernel args
      in
      r.Gpu_runtime.Pipeline.queue_stats.Gpu_runtime.Pipeline.records
    in
    let records_off = run false in
    let records_on = run true in
    let t_off = time_it (fun () -> ignore (run false)) in
    let t_on = time_it (fun () -> ignore (run true)) in
    let off_tp = float_of_int records_off /. t_off in
    let on_tp = float_of_int records_off /. t_on in
    Printf.printf
      "  %-12s %7d -> %5d records  %9.0f -> %9.0f accesses/s  (%.2fx)\n"
      w.W.name records_off records_on off_tp on_tp (t_off /. t_on);
    (records_off, records_on, off_tp, on_tp)
  in
  Printf.printf "  end-to-end pipeline, static tier off vs on:\n";
  let _, _, _, lavamd_on = e2e "lavamd" in
  ignore (e2e "nn");
  ignore (e2e "backprop");
  let registry = Telemetry.Registry.default in
  Telemetry.Registry.reset registry;
  Telemetry.Registry.set_enabled true;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Static instructions whose logging the static tier pruned \
              (bench subset)"
       registry key_static_pruned)
    !tot_static;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Static instructions considered in the bench subset" registry
       "barracuda_bench_static_insns_total")
    !tot_insns;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Whole-subset static analysis time, microseconds" registry
       "barracuda_bench_static_analyze_us")
    (int_of_float (!tot_analyze_ms *. 1e3));
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"lavamd end-to-end throughput with static pruning (unpruned \
              accesses per second)"
       registry key_static_on)
    (int_of_float lavamd_on);
  Telemetry.Registry.set_enabled false;
  warn_on_regression ~baseline:static_baseline_json ~key:key_static_on
    ~label:"static-pruned pipeline throughput" ~fresh:lavamd_on ();
  (match scan_baseline static_baseline_json key_static_pruned with
  | Some old when !tot_static < old ->
      Printf.printf
        "::warning::static tier prunes fewer instructions than the \
         checked-in baseline (%d -> %d)\n"
        old !tot_static
  | _ -> ());
  Telemetry.Export.write_json ~path:"BENCH_static.json" registry;
  Printf.printf "  wrote BENCH_static.json (%d workloads)\n"
    (List.length subset)

(* ------------------------------------------------------------------ *)
(* Automated repair -> BENCH_repair.json                               *)

let repair_baseline_json = "bench/baseline_repair.json"
let key_repair_fixed = "barracuda_bench_repair_fixed_total"
let key_repair_cases_per_sec = "barracuda_bench_repair_cases_per_sec"

let section_repair () =
  header "Automated repair: bug-suite scoreboard and throughput \
          (BENCH_repair.json)";
  let registry = Telemetry.Registry.default in
  Telemetry.Registry.reset registry;
  Telemetry.Registry.set_enabled true;
  let cases = Bugsuite.Cases.all in
  let t0 = Telemetry.Clock.now_ns () in
  let score = Bugsuite.Harness.run_repair cases in
  let wall_s = Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0) in
  Telemetry.Registry.set_enabled false;
  Printf.printf
    "  %d cases: %d fixed, %d already clean, %d unfixable (%d candidates \
     rejected) in %.2fs\n"
    (List.length cases) score.Bugsuite.Harness.fixed
    score.Bugsuite.Harness.clean score.Bugsuite.Harness.unfixable
    score.Bugsuite.Harness.fix_rejected wall_s;
  Printf.printf "  %-12s %6s %6s %10s\n" "family" "fixed" "racy" "rejected";
  List.iter
    (fun (f, (s : Bugsuite.Harness.repair_score)) ->
      if s.Bugsuite.Harness.fixed + s.Bugsuite.Harness.unfixable > 0 then
        Printf.printf "  %-12s %6d %6d %10d\n" f s.Bugsuite.Harness.fixed
          (s.Bugsuite.Harness.fixed + s.Bugsuite.Harness.unfixable)
          s.Bugsuite.Harness.fix_rejected)
    (Bugsuite.Harness.repair_families score);
  let tried =
    List.fold_left
      (fun acc (o : Bugsuite.Harness.repair_outcome) ->
        acc + o.Bugsuite.Harness.result.Repair.Engine.candidates_tried)
      0 score.Bugsuite.Harness.repair_outcomes
  in
  let cases_per_sec = float_of_int (List.length cases) /. wall_s in
  Printf.printf
    "  %d candidate validations, %.0f cases/s end-to-end\n" tried
    cases_per_sec;
  Telemetry.Registry.set_enabled true;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Bug-suite cases the repair engine fixed" registry
       key_repair_fixed)
    score.Bugsuite.Harness.fixed;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Bug-suite cases no candidate fix survived validation for"
       registry "barracuda_bench_repair_unfixable_total")
    score.Bugsuite.Harness.unfixable;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Candidate fixes that entered validation over the bug suite"
       registry "barracuda_bench_repair_candidates_tried")
    tried;
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Whole-suite repair wall time, milliseconds" registry
       "barracuda_bench_repair_ms")
    (int_of_float (wall_s *. 1e3));
  Telemetry.Metric.gauge_set
    (Telemetry.Registry.gauge
       ~help:"Repair throughput: bug-suite cases diagnosed and (when racy) \
              fixed per second"
       registry key_repair_cases_per_sec)
    (int_of_float cases_per_sec);
  Telemetry.Registry.set_enabled false;
  warn_on_regression ~baseline:repair_baseline_json
    ~key:key_repair_cases_per_sec ~label:"repair end-to-end throughput"
    ~fresh:cases_per_sec ();
  (match scan_baseline repair_baseline_json key_repair_fixed with
  | Some old when score.Bugsuite.Harness.fixed < old ->
      Printf.printf
        "::warning::repair fixes fewer bug-suite cases than the checked-in \
         baseline (%d -> %d)\n"
        old score.Bugsuite.Harness.fixed
  | _ -> ());
  Telemetry.Export.write_json ~path:"BENCH_repair.json" registry;
  Printf.printf "  wrote BENCH_repair.json (%d cases)\n" (List.length cases)

(* ------------------------------------------------------------------ *)
(* Fleet mode: multi-tenant soak + campaign -> BENCH_fleet.json        *)

let fleet_baseline_json = "bench/baseline_fleet.json"
let key_fleet_jobs_per_sec = "barracuda_bench_fleet_jobs_per_sec"
let key_fleet_p99_ms = "barracuda_bench_fleet_p99_ms"

(* A timed mixed-workload soak: several quota'd tenants hammer the
   daemon from client domains while the background fault campaign
   sweeps at its duty cycle.  Reports per-tenant client-observed
   latency, quota rejects absorbed by the retry loop, and how far the
   campaign got on the scraps of idle time. *)
let section_fleet () =
  header
    "Fleet mode: multi-tenant soak with background campaign \
     (BENCH_fleet.json)";
  let registry = Telemetry.Registry.default in
  Telemetry.Registry.reset registry;
  Telemetry.Registry.set_enabled true;
  let tenants = 3 and domains_per_tenant = 2 and jobs_per_domain = 8 in
  let mix = kernel_mix () in
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "barracuda-fleet-bench-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  (* Tight enough that bursty submits hit the bucket and exercise the
     client's retry-after loop, loose enough that the soak still
     finishes promptly. *)
  let quota = { Service.Scheduler.rate = 50.0; burst = 2; seats = 2 } in
  let tenant_quotas =
    List.init tenants (fun i -> (Printf.sprintf "tenant%d" i, quota))
  in
  let server =
    Service.Server.start
      ~config:
        {
          Service.Server.default_config with
          Service.Server.socket_path = socket;
          workers = 4;
          queue_capacity = 128;
          tenant_quotas;
        }
      ()
  in
  if not (Service.Client.wait_ready ~socket ()) then
    failwith "fleet bench: service did not come up";
  let campaign_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "barracuda-fleet-bench-%d" (Unix.getpid ()))
  in
  (try Sys.remove (Campaign.Journal.path ~dir:campaign_dir)
   with Sys_error _ -> ());
  let daemon =
    match
      Campaign.Daemon.start
        ~config:
          {
            Campaign.Daemon.seed = 42;
            cases = 4;
            trials = 6;
            batch = 8;
            duty = 0.5;
            load = (fun () -> Service.Server.load server);
          }
        ~dir:campaign_dir ()
    with
    | Ok d -> d
    | Error e -> failwith ("fleet bench: campaign: " ^ e)
  in
  Service.Server.set_campaign_hook server (fun () ->
      Some (Campaign.Daemon.status daemon));
  let t0 = Telemetry.Clock.now_ns () in
  let client tenant c =
    Array.init jobs_per_domain (fun j ->
        let base =
          mix.((c + (j * domains_per_tenant)) mod Array.length mix)
        in
        let sub = { base with Service.Protocol.tenant = Some tenant } in
        let s0 = Telemetry.Clock.now_ns () in
        (match Service.Client.submit ~retries:100 ~socket sub with
        | Ok (Service.Protocol.Result _) -> ()
        | Ok r ->
            Printf.ksprintf failwith "fleet job got %s"
              (Service.Protocol.encode_response r)
        | Error e -> Printf.ksprintf failwith "fleet job: %s" e);
        Telemetry.Clock.ns_to_ms (Telemetry.Clock.elapsed_ns ~since:s0))
  in
  let doms =
    List.concat
      (List.init tenants (fun ti ->
           let name = Printf.sprintf "tenant%d" ti in
           List.init domains_per_tenant (fun c ->
               (name, Domain.spawn (fun () -> client name c)))))
  in
  let by_tenant = Hashtbl.create 8 in
  List.iter
    (fun (name, d) ->
      let samples = Array.to_list (Domain.join d) in
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_tenant name)
      in
      Hashtbl.replace by_tenant name (samples @ prev))
    doms;
  let wall_s = Telemetry.Clock.ns_to_s (Telemetry.Clock.elapsed_ns ~since:t0) in
  (* Let the campaign use the now-idle service briefly so the status
     join below has sweep progress to show. *)
  Thread.delay 0.3;
  let st =
    match Service.Client.status ~socket with
    | Ok s -> s
    | Error e -> Printf.ksprintf failwith "fleet status: %s" e
  in
  Campaign.Daemon.stop daemon;
  let campaign = Campaign.Daemon.status daemon in
  Service.Server.stop server;
  let percentile sorted p =
    let n = Array.length sorted in
    if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))
  in
  let rejected_of name =
    match
      List.find_opt
        (fun (t : Service.Protocol.tenant_status) ->
          t.Service.Protocol.t_name = name)
        st.Service.Protocol.tenants
    with
    | Some t -> t.Service.Protocol.t_rejected
    | None -> 0
  in
  Printf.printf "  %-10s %6s %9s %9s %9s\n" "tenant" "jobs" "p50 ms"
    "p99 ms" "rejects";
  let all = ref [] in
  List.iter
    (fun ti ->
      let name = Printf.sprintf "tenant%d" ti in
      let samples =
        Option.value ~default:[] (Hashtbl.find_opt by_tenant name)
      in
      all := samples @ !all;
      let sorted = Array.of_list (List.sort compare samples) in
      Printf.printf "  %-10s %6d %9.2f %9.2f %9d\n" name
        (List.length samples) (percentile sorted 0.5)
        (percentile sorted 0.99) (rejected_of name))
    (List.init tenants (fun i -> i));
  let jobs = tenants * domains_per_tenant * jobs_per_domain in
  let thr = float_of_int jobs /. wall_s in
  let sorted_all = Array.of_list (List.sort compare !all) in
  let p99_all = percentile sorted_all 0.99 in
  let rejects_total =
    List.fold_left
      (fun acc (t : Service.Protocol.tenant_status) ->
        acc + t.Service.Protocol.t_rejected)
      0 st.Service.Protocol.tenants
  in
  Printf.printf
    "  %d jobs in %.2fs (%.1f jobs/s), overall p99 %.2f ms, %d quota \
     rejects retried\n"
    jobs wall_s thr p99_all rejects_total;
  Printf.printf
    "  campaign alongside: %d/%d trials in %d batches, silent-wrong %d%s\n"
    campaign.Service.Protocol.ca_trials campaign.Service.Protocol.ca_total
    campaign.Service.Protocol.ca_batches
    campaign.Service.Protocol.ca_silent_wrong
    (if campaign.Service.Protocol.ca_silent_wrong > 0 then
       "  ** SILENT CORRUPTION **"
     else "");
  if campaign.Service.Protocol.ca_silent_wrong > 0 then
    Printf.printf
      "::warning::fleet campaign observed silent-wrong results under \
       fault injection\n";
  let gauge key help v =
    Telemetry.Metric.gauge_set
      (Telemetry.Registry.gauge ~help registry key)
      v
  in
  gauge key_fleet_jobs_per_sec
    "Mixed-tenant soak throughput with the campaign running"
    (int_of_float thr);
  gauge key_fleet_p99_ms "Overall client-observed p99 latency, milliseconds"
    (int_of_float (Float.ceil p99_all));
  gauge "barracuda_bench_fleet_quota_rejects"
    "Quota rejects absorbed by the client retry loop during the soak"
    rejects_total;
  gauge "barracuda_bench_fleet_campaign_trials"
    "Fault-campaign trials completed on idle time during the soak"
    campaign.Service.Protocol.ca_trials;
  gauge "barracuda_bench_fleet_silent_wrong"
    "Silent-wrong trials observed by the background campaign"
    campaign.Service.Protocol.ca_silent_wrong;
  Telemetry.Registry.set_enabled false;
  warn_on_regression ~baseline:fleet_baseline_json
    ~key:key_fleet_jobs_per_sec ~label:"fleet soak throughput" ~fresh:thr ();
  (match scan_baseline fleet_baseline_json key_fleet_p99_ms with
  | Some old when p99_all > 4.0 *. float_of_int (max 1 old) ->
      Printf.printf
        "::warning::fleet p99 latency regressed vs the checked-in \
         baseline (%d ms -> %.0f ms)\n"
        old p99_all
  | _ -> ());
  Telemetry.Registry.set_enabled true;
  Telemetry.Export.write_json ~path:"BENCH_fleet.json" registry;
  Telemetry.Registry.set_enabled false;
  Printf.printf "  wrote BENCH_fleet.json (%d tenants)\n" tenants

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)

let section_bechamel () =
  header "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let subset = [ "backprop"; "hashtable"; "pathfinder"; "d_scan"; "dxtc" ] in
  let tests =
    List.concat_map
      (fun name ->
        let w = Workloads.Registry.find name in
        [
          Test.make
            ~name:(Printf.sprintf "table1.native.%s" name)
            (Staged.stage (fun () -> ignore (W.run_native w)));
          Test.make
            ~name:(Printf.sprintf "figure10.pipeline.%s" name)
            (Staged.stage (fun () -> ignore (W.run_pipeline w)));
        ])
      subset
    @ [
        Test.make ~name:"figure9.instrument.dxtc"
          (Staged.stage (fun () ->
               ignore
                 (Instrument.Pass.instrument
                    (Workloads.Registry.find "dxtc").W.kernel)));
        Test.make ~name:"figure4.litmus.mp-cta-cta"
          (Staged.stage (fun () ->
               ignore
                 (Memmodel.Litmus.weak_count Memmodel.Arch.k520
                    (Memmodel.Litmus.mp ~fence1:Ptx.Ast.Cta ~fence2:Ptx.Ast.Cta)
                    ~runs:1000 ~seed:1)));
        Test.make ~name:"s6_1.bugsuite.barracuda"
          (Staged.stage (fun () ->
               ignore (Bugsuite.Harness.run_barracuda Bugsuite.Cases.all)));
      ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~quota:(Time.second 0.25) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Printf.printf "  %-34s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ Toolkit.Instance.one; clock ] elt in
          let result = Analyze.one ols clock raw in
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
              Printf.printf "  %-34s %16.0f\n" (Test.Elt.name elt) est
          | Some [] | None ->
              Printf.printf "  %-34s %16s\n" (Test.Elt.name elt) "n/a")
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("6.1", section_61);
    ("figure4", section_figure4);
    ("table1", section_table1);
    ("figure9", section_figure9);
    ("figure10", section_figure10);
    ("ptvc", section_ptvc);
    ("queues", section_queues);
    ("granularity", section_granularity);
    ("scaling", section_scaling);
    ("parallel", section_parallel);
    ("pipeline", section_pipeline);
    ("predict", section_predict);
    ("service", section_service);
    ("shard", section_shard);
    ("stream", section_stream);
    ("static", section_static);
    ("repair", section_repair);
    ("fleet", section_fleet);
    ("bechamel", section_bechamel);
  ]

let () =
  let requested =
    Sys.argv |> Array.to_list |> List.tl |> List.filter (fun a -> a <> "--")
  in
  let selected =
    if requested = [] then sections
    else
      List.filter
        (fun (name, _) ->
          List.exists
            (fun r ->
              String.length r <= String.length name
              && String.sub name 0 (String.length r) = r)
            requested)
        sections
  in
  Printf.printf "BARRACUDA evaluation harness (%d section%s)\n"
    (List.length selected)
    (if List.length selected = 1 then "" else "s");
  List.iter (fun (_, f) -> f ()) selected
