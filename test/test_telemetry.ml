(* Telemetry subsystem: registry semantics, exporter round-trips, and
   the pipeline hooks.  The counters the hooks maintain must agree with
   the pipeline's own [queue_stats], and enabling telemetry must not
   perturb detector verdicts. *)

module W = Workloads.Workload
module Pipeline = Gpu_runtime.Pipeline

let with_telemetry f =
  Telemetry.Registry.set_enabled true;
  Telemetry.Registry.reset Telemetry.Registry.default;
  Fun.protect ~finally:(fun () -> Telemetry.Registry.set_enabled false) f

let run_pipeline (w : W.t) =
  let m = W.machine w in
  let args = w.W.setup m in
  Pipeline.run ~machine:m w.W.kernel args

(* ------------------------------------------------------------------ *)
(* Metric and registry semantics                                       *)

let test_counter_gauge () =
  with_telemetry (fun () ->
      let r = Telemetry.Registry.create () in
      let c = Telemetry.Registry.counter r "c_total" in
      Telemetry.Metric.counter_incr c;
      Telemetry.Metric.counter_add c 41;
      Alcotest.(check int) "counter" 42 (Telemetry.Metric.counter_value c);
      let g = Telemetry.Registry.gauge r "g" in
      Telemetry.Metric.gauge_max g 7;
      Telemetry.Metric.gauge_max g 3;
      Alcotest.(check int) "gauge keeps max" 7 (Telemetry.Metric.gauge_value g);
      let c' = Telemetry.Registry.counter r "c_total" in
      Telemetry.Metric.counter_incr c';
      Alcotest.(check int) "re-registration shares the metric" 43
        (Telemetry.Metric.counter_value c);
      Telemetry.Registry.reset r;
      Alcotest.(check int) "reset zeroes" 0 (Telemetry.Metric.counter_value c))

let test_disabled_is_noop () =
  Telemetry.Registry.set_enabled false;
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter r "c_total" in
  Telemetry.Metric.counter_incr c;
  Alcotest.(check int) "disabled counter stays 0" 0
    (Telemetry.Metric.counter_value c);
  let n = ref 0 in
  let v = Telemetry.Span.with_ ~registry:r ~name:"s" (fun () -> incr n; 9) in
  Alcotest.(check int) "thunk ran" 1 !n;
  Alcotest.(check int) "value passed through" 9 v;
  Alcotest.(check int) "no span recorded" 0
    (Telemetry.Registry.find_counter
       ~labels:[ ("span", "s") ]
       r "barracuda_span_calls_total")

let test_kind_mismatch () =
  with_telemetry (fun () ->
      let r = Telemetry.Registry.create () in
      ignore (Telemetry.Registry.counter r "m");
      Alcotest.check_raises "kind mismatch rejected"
        (Invalid_argument "Telemetry.Registry: m already registered as a counter")
        (fun () -> ignore (Telemetry.Registry.gauge r "m")))

let test_labels_distinct () =
  with_telemetry (fun () ->
      let r = Telemetry.Registry.create () in
      let a = Telemetry.Registry.counter ~labels:[ ("q", "0") ] r "d_total" in
      let b = Telemetry.Registry.counter ~labels:[ ("q", "1") ] r "d_total" in
      Telemetry.Metric.counter_add a 5;
      Telemetry.Metric.counter_incr b;
      Alcotest.(check int) "label set 0" 5
        (Telemetry.Registry.find_counter ~labels:[ ("q", "0") ] r "d_total");
      Alcotest.(check int) "label set 1" 1
        (Telemetry.Registry.find_counter ~labels:[ ("q", "1") ] r "d_total"))

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let sample_registry () =
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter ~help:"a counter" r "x_total" in
  Telemetry.Metric.counter_add c 17;
  let g = Telemetry.Registry.gauge ~labels:[ ("k", "v") ] r "depth" in
  Telemetry.Metric.gauge_max g 12;
  let h =
    Telemetry.Registry.histogram ~bounds:[| 1.0; 10.0 |] r "lat_ms"
  in
  Telemetry.Metric.histogram_observe h 0.5;
  Telemetry.Metric.histogram_observe h 5.0;
  Telemetry.Metric.histogram_observe h 50.0;
  r

let test_json_roundtrip () =
  with_telemetry (fun () ->
      let r = sample_registry () in
      let doc = Telemetry.Export.json_of r in
      match Telemetry.Json.of_string (Telemetry.Export.to_json_string r) with
      | Error e -> Alcotest.failf "exported JSON does not parse: %s" e
      | Ok parsed ->
          Alcotest.(check bool) "parse (print doc) = doc" true (parsed = doc))

let test_json_parser () =
  let t = {|{"a": [1, -2.5, true, null], "b": {"s": "x\n\"y"}}|} in
  (match Telemetry.Json.of_string t with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j -> (
      let first_of_a =
        match Telemetry.Json.member "a" j with
        | Some (Telemetry.Json.List (hd :: _)) -> Telemetry.Json.to_int hd
        | _ -> None
      in
      Alcotest.(check (option int)) "nested int" (Some 1) first_of_a;
      match Telemetry.Json.member "c" j with
      | None -> ()
      | Some _ -> Alcotest.fail "absent member"));
  match Telemetry.Json.of_string "{\"a\": }" with
  | Ok _ -> Alcotest.fail "malformed JSON accepted"
  | Error _ -> ()

let test_prometheus () =
  with_telemetry (fun () ->
      let r = sample_registry () in
      let text = Telemetry.Export.to_prometheus r in
      let contains sub =
        let n = String.length sub and m = String.length text in
        let rec go i = i + n <= m && (String.sub text i n = sub || go (i + 1)) in
        go 0
      in
      List.iter
        (fun line ->
          Alcotest.(check bool) (Printf.sprintf "contains %S" line) true
            (contains line))
        [
          "# TYPE x_total counter";
          "x_total 17";
          "depth{k=\"v\"} 12";
          (* buckets are cumulative: 0.5 -> first, 5.0 -> second, 50 -> +Inf *)
          "lat_ms_bucket{le=\"1\"} 1";
          "lat_ms_bucket{le=\"10\"} 2";
          "lat_ms_bucket{le=\"+Inf\"} 3";
          "lat_ms_count 3";
        ])

(* ------------------------------------------------------------------ *)
(* Pipeline hooks                                                      *)

let stage_names = [ "instrument"; "execute"; "queue"; "decode"; "detect" ]

let test_hooks_match_queue_stats () =
  with_telemetry (fun () ->
      let w = Workloads.Registry.find "backprop" in
      let r = run_pipeline w in
      let reg = Telemetry.Registry.default in
      let counter = Telemetry.Registry.find_counter reg in
      Alcotest.(check int) "records counter = queue_stats.records"
        r.Pipeline.queue_stats.Pipeline.records
        (counter "barracuda_pipeline_records_total");
      Alcotest.(check int) "queue pushes = records shipped"
        r.Pipeline.queue_stats.Pipeline.records
        (counter "barracuda_queue_pushes_total");
      Alcotest.(check int) "stalls counter = queue_stats.stalls"
        r.Pipeline.queue_stats.Pipeline.stalls
        (counter "barracuda_pipeline_stalls_total");
      Alcotest.(check int) "high watermark gauge = queue_stats"
        r.Pipeline.queue_stats.Pipeline.high_watermark
        (Telemetry.Registry.find_gauge reg "barracuda_queue_high_watermark");
      Alcotest.(check int) "detector saw every record"
        r.Pipeline.queue_stats.Pipeline.records
        (counter "barracuda_detector_records_total"))

let test_stage_spans_in_json () =
  with_telemetry (fun () ->
      ignore (run_pipeline (Workloads.Registry.find "pathfinder"));
      let doc = Telemetry.Export.json_of Telemetry.Registry.default in
      let span_labels =
        match Telemetry.Json.member "metrics" doc with
        | Some (Telemetry.Json.List ms) ->
            List.filter_map
              (fun m ->
                match
                  ( Telemetry.Json.member "name" m,
                    Telemetry.Json.member "labels" m )
                with
                | Some (Telemetry.Json.Str "barracuda_span_calls_total"),
                  Some labels ->
                    Option.bind
                      (Telemetry.Json.member "span" labels)
                      Telemetry.Json.to_str
                | _ -> None)
              ms
        | _ -> []
      in
      List.iter
        (fun stage ->
          Alcotest.(check bool)
            (Printf.sprintf "span %S exported" stage)
            true
            (List.mem stage span_labels))
        stage_names)

let test_verdicts_unchanged () =
  (* telemetry must be observation-only: identical race counts with the
     registry enabled and disabled, across the whole workload registry *)
  List.iter
    (fun (w : W.t) ->
      Telemetry.Registry.set_enabled false;
      let off, _ = W.run_detector w in
      let off_report = Barracuda.Detector.report off in
      with_telemetry (fun () ->
          let on, _ = W.run_detector w in
          let on_report = Barracuda.Detector.report on in
          Alcotest.(check int)
            (Printf.sprintf "%s: race count unchanged" w.W.name)
            (Barracuda.Report.race_count off_report)
            (Barracuda.Report.race_count on_report);
          Alcotest.(check bool)
            (Printf.sprintf "%s: verdict unchanged" w.W.name)
            (Barracuda.Report.has_race off_report)
            (Barracuda.Report.has_race on_report)))
    Workloads.Registry.all

let test_session_rollups () =
  with_telemetry (fun () ->
      let w = Workloads.Registry.find "backprop" in
      let layout = w.W.layout in
      let session = Gpu_runtime.Session.create ~layout () in
      let args = w.W.setup (Gpu_runtime.Session.machine session) in
      ignore (Gpu_runtime.Session.launch session w.W.kernel args);
      let args = w.W.setup (Gpu_runtime.Session.machine session) in
      ignore (Gpu_runtime.Session.launch session w.W.kernel args);
      let rollups = Gpu_runtime.Session.rollups session in
      Alcotest.(check int) "one rollup per launch" 2 (List.length rollups);
      List.iter
        (fun (r : Gpu_runtime.Session.rollup) ->
          Alcotest.(check string) "rollup names the kernel"
            w.W.kernel.Ptx.Ast.kname r.Gpu_runtime.Session.r_kernel;
          Alcotest.(check bool) "rollup shipped records" true
            (r.Gpu_runtime.Session.r_records > 0);
          Alcotest.(check bool) "monotonic duration positive" true
            (r.Gpu_runtime.Session.r_ns > 0L))
        rollups;
      Alcotest.(check int) "session launch counter" 2
        (Telemetry.Registry.find_counter Telemetry.Registry.default
           "barracuda_session_launches_total"))

let suite =
  [
    Alcotest.test_case "counter/gauge semantics" `Quick test_counter_gauge;
    Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "kind mismatch rejected" `Quick test_kind_mismatch;
    Alcotest.test_case "label sets are distinct metrics" `Quick
      test_labels_distinct;
    Alcotest.test_case "JSON export round-trips" `Quick test_json_roundtrip;
    Alcotest.test_case "JSON parser corners" `Quick test_json_parser;
    Alcotest.test_case "Prometheus exposition format" `Quick test_prometheus;
    Alcotest.test_case "hooks match queue_stats" `Quick
      test_hooks_match_queue_stats;
    Alcotest.test_case "five stage spans exported" `Quick
      test_stage_spans_in_json;
    Alcotest.test_case "verdicts unchanged by telemetry" `Quick
      test_verdicts_unchanged;
    Alcotest.test_case "session rollups" `Quick test_session_rollups;
  ]
