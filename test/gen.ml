(* Random structured kernels for property-based testing.

   Programs are trees of statements over one global array ("g") and one
   shared array; barriers only appear at the top level so they are
   always convergent.  The small grid (warp size 4, 2 warps per block,
   2 blocks) keeps the reference detector cheap while still exercising
   intra-warp, inter-warp and inter-block interactions. *)

module Ast = Ptx.Ast
module B = Ptx.Builder

let layout = Vclock.Layout.make ~warp_size:4 ~threads_per_block:8 ~blocks:2

let words = 8 (* data words in the global and shared arrays *)

let sync_words = 4
(* Synchronization locations live in g[words .. words+sync_words):
   release/acquire operations store values outside race checking, so
   their final contents are schedule-dependent and memory-comparison
   properties must skip them. *)

type value = Const of int | Lane_dependent

type stmt =
  | Global_store of int * value
  | Global_load of int
  | Shared_store of int * value
  | Shared_load of int
  | Atomic_add of int
  | Store_own_slot  (* g[gtid] = tid: never races *)
  | Fence of Ast.fence_scope
  | Barrier
  | Release_store of Ast.fence_scope * int
      (* fence; st g[i]: inferred as a release on g[i] *)
  | Acquire_load of Ast.fence_scope * int
      (* ld g[i]; fence: inferred as an acquire on g[i] *)
  | Acqrel_atomic of Ast.fence_scope * int
      (* fence; atom.add g[i]; fence: an acquire-release *)
  | If_tid_lt of int * stmt list * stmt list
  | If_parity of stmt list * stmt list
  | If_block of stmt list  (* restrict to block 0 *)

type program = stmt list

let rec emit_stmt b = function
  | Global_store (i, v) ->
      let src =
        match v with
        | Const c -> B.imm c
        | Lane_dependent -> Ast.Sreg Ast.Tid
      in
      B.st ~offset:(4 * i) b (B.sym "g") src
  | Global_load i ->
      let r = B.fresh_reg b in
      B.ld ~offset:(4 * i) b r (B.sym "g")
  | Shared_store (i, v) ->
      let src =
        match v with
        | Const c -> B.imm c
        | Lane_dependent -> Ast.Sreg Ast.Tid
      in
      B.st ~space:Ast.Shared ~offset:(4 * i) b (B.sym "smem") src
  | Shared_load i ->
      let r = B.fresh_reg b in
      B.ld ~space:Ast.Shared ~offset:(4 * i) b r (B.sym "smem")
  | Atomic_add i ->
      let r = B.fresh_reg b in
      B.atom ~offset:(4 * i) b Ast.A_add r (B.sym "g") (B.imm 1)
  | Store_own_slot ->
      let g = B.global_tid b in
      let a = B.fresh_reg ~cls:"rd" b in
      B.mad b a (B.reg g) (B.imm 4) (B.sym "g");
      B.st ~offset:(4 * (words + sync_words)) b (B.reg a) (Ast.Sreg Ast.Tid)
  | Fence scope ->
      B.membar b scope;
      (* separator so a random fence cannot bundle with a following
         store into an unintended release *)
      B.mov b (B.fresh_reg b) (B.imm 0)
  | Barrier -> B.bar b
  | Release_store (scope, i) ->
      B.membar b scope;
      B.st ~offset:(4 * (words + i)) b (B.sym "g") (Ast.Sreg Ast.Tid)
  | Acquire_load (scope, i) ->
      let r = B.fresh_reg b in
      B.ld ~offset:(4 * (words + i)) b r (B.sym "g");
      B.membar b scope;
      B.mov b (B.fresh_reg b) (B.imm 0)
  | Acqrel_atomic (scope, i) ->
      B.membar b scope;
      let r = B.fresh_reg b in
      B.atom ~offset:(4 * (words + i)) b Ast.A_add r (B.sym "g") (B.imm 1);
      B.membar b scope;
      B.mov b (B.fresh_reg b) (B.imm 0)
  | If_tid_lt (n, then_, else_) ->
      B.if_else b Ast.C_lt (Ast.Sreg Ast.Tid) (B.imm n)
        (fun b -> emit_body b then_)
        (fun b -> emit_body b else_)
  | If_parity (then_, else_) ->
      let p = B.fresh_reg b in
      B.binop b Ast.B_and p (Ast.Sreg Ast.Tid) (B.imm 1);
      B.if_else b Ast.C_eq (B.reg p) (B.imm 0)
        (fun b -> emit_body b then_)
        (fun b -> emit_body b else_)
  | If_block body ->
      B.if_ b Ast.C_eq (Ast.Sreg Ast.Ctaid) (B.imm 0) (fun b ->
          emit_body b body)

and emit_body b stmts = List.iter (emit_stmt b) stmts

let kernel_of_program ?(name = "qcheck_kernel") prog =
  let b =
    B.create ~params:[ "g" ]
      ~shared:[ ("smem", words * 4) ]
      name
  in
  emit_body b prog;
  B.finish b

let setup machine =
  (* data words, sync words, then one own-slot word per thread *)
  let total = words + sync_words + Vclock.Layout.total_threads layout in
  [| Int64.of_int (Simt.Machine.alloc_global machine (4 * total)) |]

(* Word offsets whose final contents are deterministic for race-free
   programs (everything except the sync words). *)
let comparable_word_offsets () =
  let total = words + sync_words + Vclock.Layout.total_threads layout in
  List.filter (fun w -> w < words || w >= words + sync_words)
    (List.init total Fun.id)

(* ---- QCheck generators ------------------------------------------- *)

open QCheck2.Gen

let gen_value = oneof [ return Lane_dependent; map (fun c -> Const c) (int_range 0 3) ]
let gen_index = int_range 0 (words - 1)

let gen_scope = oneof [ return Ast.Cta; return Ast.Gl ]

let gen_leaf =
  oneof
    [
      map2 (fun i v -> Global_store (i, v)) gen_index gen_value;
      map (fun i -> Global_load i) gen_index;
      map2 (fun i v -> Shared_store (i, v)) gen_index gen_value;
      map (fun i -> Shared_load i) gen_index;
      map (fun i -> Atomic_add i) gen_index;
      return Store_own_slot;
      return (Fence Ast.Cta);
      return (Fence Ast.Gl);
      map2 (fun s i -> Release_store (s, i)) gen_scope (int_range 0 (sync_words - 1));
      map2 (fun s i -> Acquire_load (s, i)) gen_scope (int_range 0 (sync_words - 1));
      map2 (fun s i -> Acqrel_atomic (s, i)) gen_scope (int_range 0 (sync_words - 1));
    ]

(* nested statements: no barriers below the top level *)
let gen_nested_stmt =
  sized_size (int_range 0 2) @@ fun depth ->
  let rec go depth =
    if depth = 0 then gen_leaf
    else
      frequency
        [
          (4, gen_leaf);
          ( 1,
            map2
              (fun t e -> If_parity (t, e))
              (list_size (int_range 1 3) (go (depth - 1)))
              (list_size (int_range 0 2) (go (depth - 1))) );
          ( 1,
            map2
              (fun n t -> If_tid_lt (n, t, []))
              (int_range 1 7)
              (list_size (int_range 1 3) (go (depth - 1))) );
        ]
  in
  go depth

let gen_top_stmt =
  frequency
    [ (6, gen_nested_stmt); (1, return Barrier);
      (1, map (fun body -> If_block body) (list_size (int_range 1 3) gen_nested_stmt)) ]

let gen_program = list_size (int_range 1 12) gen_top_stmt

let rec pp_stmt ppf = function
  | Global_store (i, Const c) -> Format.fprintf ppf "g[%d]=%d" i c
  | Global_store (i, Lane_dependent) -> Format.fprintf ppf "g[%d]=tid" i
  | Global_load i -> Format.fprintf ppf "r=g[%d]" i
  | Shared_store (i, Const c) -> Format.fprintf ppf "s[%d]=%d" i c
  | Shared_store (i, Lane_dependent) -> Format.fprintf ppf "s[%d]=tid" i
  | Shared_load i -> Format.fprintf ppf "r=s[%d]" i
  | Atomic_add i -> Format.fprintf ppf "atomic(g[%d])" i
  | Store_own_slot -> Format.fprintf ppf "own"
  | Fence s -> Format.fprintf ppf "fence.%a" Ast.pp_fence_scope s
  | Barrier -> Format.fprintf ppf "bar"
  | Release_store (s, i) ->
      Format.fprintf ppf "rel.%a(g[%d])" Ast.pp_fence_scope s i
  | Acquire_load (s, i) ->
      Format.fprintf ppf "acq.%a(g[%d])" Ast.pp_fence_scope s i
  | Acqrel_atomic (s, i) ->
      Format.fprintf ppf "acqrel.%a(g[%d])" Ast.pp_fence_scope s i
  | If_tid_lt (n, t, e) ->
      Format.fprintf ppf "if(tid<%d){%a}else{%a}" n pp_body t pp_body e
  | If_parity (t, e) ->
      Format.fprintf ppf "if(even){%a}else{%a}" pp_body t pp_body e
  | If_block body -> Format.fprintf ppf "if(blk0){%a}" pp_body body

and pp_body ppf stmts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
    pp_stmt ppf stmts

let print_program prog = Format.asprintf "%a" pp_body prog

(* Run a generated program through the simulator + inference pipeline
   and return its recorded trace (shared by the gtrace and predict
   property tests). *)
let trace_of_program prog =
  let m = Simt.Machine.create ~layout () in
  let k = kernel_of_program prog in
  let args = setup m in
  Gtrace.Infer.run ~layout m k args

(* ---- Deterministic property runs --------------------------------- *)

(* Property tests draw from a pinned PRNG seed so a CI failure
   reproduces locally; override with QCHECK_SEED=<int>.  The seed in
   effect is printed whenever a property fails. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | None | Some "" -> 0x5ca1ab1e
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.ksprintf failwith "QCHECK_SEED must be an integer, got %S" s)

(* Drop-in for [QCheck_alcotest.to_alcotest], seeded with
   [qcheck_seed] instead of self-initialized randomness. *)
let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| qcheck_seed |])
      test
  in
  ( name,
    speed,
    fun arg ->
      try run arg
      with e ->
        Printf.eprintf "[qcheck] reproduce with QCHECK_SEED=%d\n%!" qcheck_seed;
        raise e )
