let () =
  Alcotest.run "barracuda"
    [
      ("vclock", Test_vclock.suite);
      ("ptx", Test_ptx.suite);
      ("cfg", Test_cfg.suite);
      ("simt", Test_simt.suite);
      ("gtrace", Test_gtrace.suite);
      ("detector", Test_detector.suite);
      ("rules", Test_rules.suite);
      ("runtime", Test_runtime.suite);
      ("instrument", Test_instrument.suite);
      ("memmodel", Test_memmodel.suite);
      ("workloads", Test_workloads.suite);
      ("bugsuite", Test_bugsuite.suite);
      ("warp_sweep", Test_warp_sweep.suite);
      ("dims", Test_dims.suite);
      ("session", Test_session.suite);
      ("stream", Test_stream.suite);
      ("parallel", Test_parallel.suite);
      ("telemetry", Test_telemetry.suite);
      ("predict", Test_predict.suite);
      ("service", Test_service.suite);
      ("fault", Test_fault.suite);
      ("shard", Test_shard.suite);
      ("static", Test_static.suite);
      ("repair", Test_repair.suite);
      ("fleet", Test_fleet.suite);
    ]
