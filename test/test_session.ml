(* Multi-launch sessions (§4.1) and the §3.4 correctness invariant. *)

module Ast = Ptx.Ast
module B = Ptx.Builder
module Session = Gpu_runtime.Session

let layout = Gen.layout

let writer_kernel =
  let b = B.create ~params:[ "buf" ] "writer" in
  let g = B.global_tid b in
  let a = B.fresh_reg ~cls:"rd" b in
  B.mad b a (B.reg g) (B.imm 4) (B.sym "buf");
  B.st b (B.reg a) (B.reg g);
  B.finish b

let reader_kernel =
  let b = B.create ~params:[ "buf"; "out" ] "reader" in
  let g = B.global_tid b in
  let a = B.fresh_reg ~cls:"rd" b in
  B.mad b a (B.reg g) (B.imm 4) (B.sym "buf");
  let v = B.fresh_reg b in
  B.ld b v (B.reg a);
  let o = B.fresh_reg ~cls:"rd" b in
  B.mad b o (B.reg g) (B.imm 4) (B.sym "out");
  B.st b (B.reg o) (B.reg v);
  B.finish b

let racy_kernel =
  let b = B.create ~params:[ "buf" ] "racy" in
  B.st b (B.sym "buf") (Ast.Sreg Ast.Tid);
  B.finish b

let test_memory_persists_across_launches () =
  let s = Session.create ~layout () in
  let buf = Simt.Machine.alloc_global (Session.machine s) 256 in
  let out = Simt.Machine.alloc_global (Session.machine s) 256 in
  let _ = Session.launch s writer_kernel [| Int64.of_int buf |] in
  let _ =
    Session.launch s reader_kernel [| Int64.of_int buf; Int64.of_int out |]
  in
  Alcotest.(check int) "two launches" 2 (Session.launches s);
  (* launch boundaries synchronize: no cross-launch race *)
  Alcotest.(check int) "no races across launches" 0 (Session.total_races s);
  (* the second launch really read the first launch's data *)
  Alcotest.(check int64) "data flowed" 5L
    (Simt.Machine.peek (Session.machine s) ~addr:(out + (4 * 5)) ~width:4)

let test_per_launch_reports () =
  let s = Session.create ~layout () in
  let buf = Simt.Machine.alloc_global (Session.machine s) 256 in
  let _ = Session.launch s writer_kernel [| Int64.of_int buf |] in
  let _ = Session.launch s racy_kernel [| Int64.of_int buf |] in
  match Session.reports s with
  | [ ("writer", r1); ("racy", r2) ] ->
      Alcotest.(check bool) "writer clean" false (Barracuda.Report.has_race r1);
      Alcotest.(check bool) "racy flagged" true (Barracuda.Report.has_race r2)
  | _ -> Alcotest.fail "unexpected report list"

let test_device_reset () =
  let s = Session.create ~layout () in
  let buf = Simt.Machine.alloc_global (Session.machine s) 256 in
  let _ = Session.launch s writer_kernel [| Int64.of_int buf |] in
  Alcotest.(check bool) "memory written" true
    (Simt.Machine.peek (Session.machine s) ~addr:(buf + 8) ~width:4 <> 0L);
  Session.device_reset s;
  Alcotest.(check int) "reset counted" 1 (Session.resets s);
  let buf2 = Simt.Machine.alloc_global (Session.machine s) 256 in
  Alcotest.(check int64) "memory cleared" 0L
    (Simt.Machine.peek (Session.machine s) ~addr:(buf2 + 8) ~width:4);
  (* the session keeps working after the reset *)
  let _ = Session.launch s writer_kernel [| Int64.of_int buf2 |] in
  Alcotest.(check int) "launches survive reset" 2 (Session.launches s)

(* ---- §3.4 invariant ------------------------------------------------- *)

let prop_invariant_preserved =
  QCheck2.Test.make
    ~name:"the proof invariant holds after every reference-detector step"
    ~count:100 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let m = Simt.Machine.create ~layout () in
      let args = Gen.setup m in
      let ops, _ = Gtrace.Infer.run ~layout m k args in
      let d = Barracuda.Reference.create ~layout () in
      List.for_all
        (fun op ->
          Barracuda.Reference.step d op;
          Barracuda.Reference.invariant_holds d)
        ops)

let suite =
  [
    Alcotest.test_case "memory persists across launches" `Quick
      test_memory_persists_across_launches;
    Alcotest.test_case "per-launch reports" `Quick test_per_launch_reports;
    Alcotest.test_case "device reset" `Quick test_device_reset;
  ]
  @ List.map Gen.to_alcotest [ prop_invariant_preserved ]
