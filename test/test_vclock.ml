(* Unit + property tests for the vclock library: grid layout
   arithmetic, sparse vector clocks, epochs, and compressed clocks. *)

module Layout = Vclock.Layout
module Vc = Vclock.Vector_clock
module Epoch = Vclock.Epoch
module Cvc = Vclock.Cvc

let lay = Layout.make ~warp_size:4 ~threads_per_block:10 ~blocks:3

(* ---- Layout ------------------------------------------------------- *)

let test_layout_totals () =
  Alcotest.(check int) "total threads" 30 (Layout.total_threads lay);
  Alcotest.(check int) "warps per block" 3 (Layout.warps_per_block lay);
  Alcotest.(check int) "total warps" 9 (Layout.total_warps lay)

let test_layout_roundtrip () =
  for tid = 0 to Layout.total_threads lay - 1 do
    let warp = Layout.warp_of_tid lay tid in
    let lane = Layout.lane_of_tid lay tid in
    Alcotest.(check int)
      (Printf.sprintf "tid %d roundtrip" tid)
      tid
      (Layout.tid_of_warp_lane lay ~warp ~lane);
    Alcotest.(check int)
      (Printf.sprintf "tid %d block consistency" tid)
      (Layout.block_of_tid lay tid)
      (Layout.block_of_warp lay warp)
  done

let test_layout_partial_warp () =
  (* 10 threads/block with warp 4: warps of 4, 4, 2 threads *)
  Alcotest.(check int) "full warp" 4 (Layout.threads_in_warp lay 0);
  Alcotest.(check int) "partial warp" 2 (Layout.threads_in_warp lay 2);
  Alcotest.(check int) "full mask" 0xF (Layout.full_mask lay ~warp:1);
  Alcotest.(check int) "partial mask" 0x3 (Layout.full_mask lay ~warp:2)

let test_layout_invalid () =
  Alcotest.check_raises "zero warp size" (Invalid_argument "Layout.make: warp_size <= 0")
    (fun () -> ignore (Layout.make ~warp_size:0 ~threads_per_block:4 ~blocks:1))

(* ---- Vector clocks ------------------------------------------------ *)

let test_vc_basic () =
  let v = Vc.of_list [ (1, 5); (3, 2) ] in
  Alcotest.(check int) "get present" 5 (Vc.get v 1);
  Alcotest.(check int) "get absent" 0 (Vc.get v 2);
  Alcotest.(check int) "incr" 6 (Vc.get (Vc.incr v 1) 1);
  Alcotest.(check int) "incr from zero" 1 (Vc.get (Vc.incr v 7) 7);
  Alcotest.(check bool) "bottom is bottom" true (Vc.is_bottom Vc.bottom);
  Alcotest.(check bool) "set to zero removes" true
    (Vc.is_bottom (Vc.set (Vc.of_list [ (2, 1) ]) 2 0))

let test_vc_order () =
  let a = Vc.of_list [ (0, 1); (1, 2) ] in
  let b = Vc.of_list [ (0, 1); (1, 3); (2, 1) ] in
  Alcotest.(check bool) "a <= b" true (Vc.leq a b);
  Alcotest.(check bool) "not b <= a" false (Vc.leq b a);
  Alcotest.(check bool) "bottom below all" true (Vc.leq Vc.bottom a)

let gen_vc =
  QCheck2.Gen.(
    map Vc.of_list
      (list_size (int_range 0 6) (pair (int_range 0 9) (int_range 0 5))))

let print_vc = Format.asprintf "%a" Vc.pp

let prop_join_upper_bound =
  QCheck2.Test.make ~name:"vc join is an upper bound" ~count:300
    QCheck2.Gen.(pair gen_vc gen_vc)
    (fun (a, b) ->
      let j = Vc.join a b in
      Vc.leq a j && Vc.leq b j)

let prop_join_least =
  QCheck2.Test.make ~name:"vc join is the least upper bound" ~count:300
    QCheck2.Gen.(triple gen_vc gen_vc gen_vc)
    (fun (a, b, c) ->
      (not (Vc.leq a c && Vc.leq b c)) || Vc.leq (Vc.join a b) c)

let prop_join_commutative =
  QCheck2.Test.make ~name:"vc join commutative" ~count:300
    QCheck2.Gen.(pair gen_vc gen_vc)
    (fun (a, b) -> Vc.equal (Vc.join a b) (Vc.join b a))

let prop_join_associative =
  QCheck2.Test.make ~name:"vc join associative" ~count:300
    QCheck2.Gen.(triple gen_vc gen_vc gen_vc)
    (fun (a, b, c) ->
      Vc.equal (Vc.join (Vc.join a b) c) (Vc.join a (Vc.join b c)))

let prop_join_idempotent =
  QCheck2.Test.make ~name:"vc join idempotent" ~count:300 gen_vc (fun a ->
      Vc.equal (Vc.join a a) a)

let prop_leq_antisymmetric =
  QCheck2.Test.make ~name:"vc leq antisymmetric" ~count:300
    QCheck2.Gen.(pair gen_vc gen_vc)
    (fun (a, b) -> (not (Vc.leq a b && Vc.leq b a)) || Vc.equal a b)

(* ---- Epochs -------------------------------------------------------- *)

let test_epoch_vs_vc () =
  let e = Epoch.make ~clock:3 ~tid:1 in
  Alcotest.(check bool) "below matching vc" true
    (Epoch.leq_vc e (Vc.of_list [ (1, 3) ]));
  Alcotest.(check bool) "not below smaller" false
    (Epoch.leq_vc e (Vc.of_list [ (1, 2) ]));
  Alcotest.(check bool) "bottom epoch below bottom vc" true
    (Epoch.leq_vc Epoch.bottom Vc.bottom)

let gen_epoch =
  QCheck2.Gen.(
    map
      (fun (c, t) -> Epoch.make ~clock:c ~tid:t)
      (pair (int_range 0 5) (int_range 0 9)))

let prop_epoch_leq_matches_vc =
  QCheck2.Test.make ~name:"epoch comparison agrees with its vc expansion"
    ~count:500
    QCheck2.Gen.(pair gen_epoch gen_vc)
    (fun (e, v) -> Epoch.leq_vc e v = Vc.leq (Epoch.to_vc e) v)

(* ---- Compressed vector clocks -------------------------------------- *)

let gen_cvc_op =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun t c -> `Point (t, c)) (int_range 0 29) (int_range 1 6);
        map2 (fun b c -> `Block (b, c)) (int_range 0 2) (int_range 1 6);
        map2 (fun w c -> `Warp (w, c)) (int_range 0 8) (int_range 1 6);
      ])

let apply_cvc_op v = function
  | `Point (t, c) -> Cvc.set_point v t c
  | `Block (b, c) -> Cvc.raise_block v b c
  | `Warp (w, c) -> Cvc.raise_warp v w c

let gen_cvc =
  QCheck2.Gen.(
    map
      (fun ops -> List.fold_left apply_cvc_op (Cvc.bottom lay) ops)
      (list_size (int_range 0 8) gen_cvc_op))

let prop_cvc_matches_expansion =
  QCheck2.Test.make ~name:"cvc get agrees with full expansion" ~count:300
    gen_cvc (fun v ->
      let full = Cvc.to_vector_clock v in
      let ok = ref true in
      for tid = 0 to Layout.total_threads lay - 1 do
        if Cvc.get v tid <> Vc.get full tid then ok := false
      done;
      !ok)

let prop_cvc_join_pointwise =
  QCheck2.Test.make ~name:"cvc join is pointwise max" ~count:300
    QCheck2.Gen.(pair gen_cvc gen_cvc)
    (fun (a, b) ->
      let j = Cvc.join a b in
      let ok = ref true in
      for tid = 0 to Layout.total_threads lay - 1 do
        if Cvc.get j tid <> max (Cvc.get a tid) (Cvc.get b tid) then
          ok := false
      done;
      !ok)

let prop_cvc_leq_matches_expansion =
  QCheck2.Test.make ~name:"cvc leq agrees with expanded clocks" ~count:300
    QCheck2.Gen.(pair gen_cvc gen_cvc)
    (fun (a, b) ->
      Cvc.leq a b = Vc.leq (Cvc.to_vector_clock a) (Cvc.to_vector_clock b))

let prop_cvc_roundtrip =
  QCheck2.Test.make ~name:"cvc of_vector_clock/to_vector_clock roundtrip"
    ~count:300 gen_cvc (fun v ->
      let full = Cvc.to_vector_clock v in
      Cvc.equal v (Cvc.of_vector_clock lay full))

(* ---- Mutable compressed clocks (Cvc.Mut) --------------------------- *)

let prop_mut_thaw_freeze_roundtrip =
  QCheck2.Test.make ~name:"Cvc.Mut.freeze (thaw v) = v" ~count:300 gen_cvc
    (fun v -> Cvc.equal v (Cvc.Mut.freeze (Cvc.Mut.thaw v)))

let prop_mut_get_matches_persistent =
  QCheck2.Test.make ~name:"Cvc.Mut.get agrees with the thawed clock"
    ~count:300 gen_cvc (fun v ->
      let m = Cvc.Mut.thaw v in
      let ok = ref true in
      for tid = 0 to Layout.total_threads lay - 1 do
        if Cvc.Mut.get m tid <> Cvc.get v tid then ok := false
      done;
      !ok)

let prop_mut_join_into_matches_join =
  QCheck2.Test.make
    ~name:"in-place join_into then freeze equals persistent join" ~count:300
    QCheck2.Gen.(pair gen_cvc gen_cvc)
    (fun (a, b) ->
      let m = Cvc.Mut.thaw a in
      Cvc.Mut.join_into b m;
      Cvc.equal (Cvc.join a b) (Cvc.Mut.freeze m))

let prop_mut_copy_isolates =
  QCheck2.Test.make ~name:"Cvc.Mut.copy detaches mutable state" ~count:200
    QCheck2.Gen.(pair gen_cvc gen_cvc)
    (fun (a, b) ->
      let m = Cvc.Mut.thaw a in
      let m' = Cvc.Mut.copy m in
      Cvc.Mut.join_into b m';
      (* the original must be unaffected by mutations of the copy *)
      Cvc.equal a (Cvc.Mut.freeze m))

let test_cvc_floors_subsume_points () =
  let v = Cvc.set_point (Cvc.bottom lay) 5 2 in
  let v = Cvc.raise_block v 0 4 in
  Alcotest.(check int) "floor wins" 4 (Cvc.get v 5);
  (* the subsumed point entry should have been dropped *)
  Alcotest.(check int) "footprint is just the floor" 1 (Cvc.footprint v)

let qsuite tests = List.map Gen.to_alcotest tests
let _ = print_vc

let suite =
  [
    Alcotest.test_case "layout totals" `Quick test_layout_totals;
    Alcotest.test_case "layout tid roundtrip" `Quick test_layout_roundtrip;
    Alcotest.test_case "layout partial warps" `Quick test_layout_partial_warp;
    Alcotest.test_case "layout invalid" `Quick test_layout_invalid;
    Alcotest.test_case "vc basics" `Quick test_vc_basic;
    Alcotest.test_case "vc ordering" `Quick test_vc_order;
    Alcotest.test_case "epoch vs vc" `Quick test_epoch_vs_vc;
    Alcotest.test_case "cvc floors subsume points" `Quick
      test_cvc_floors_subsume_points;
  ]
  @ qsuite
      [
        prop_join_upper_bound;
        prop_join_least;
        prop_join_commutative;
        prop_join_associative;
        prop_join_idempotent;
        prop_leq_antisymmetric;
        prop_epoch_leq_matches_vc;
        prop_cvc_matches_expansion;
        prop_cvc_join_pointwise;
        prop_cvc_leq_matches_expansion;
        prop_cvc_roundtrip;
        prop_mut_thaw_freeze_roundtrip;
        prop_mut_get_matches_persistent;
        prop_mut_join_into_matches_join;
        prop_mut_copy_isolates;
      ]
