(* Predictive race analysis: graph ordering, witness generation and the
   schedule-sensitive bug-suite supplement. *)

module Op = Gtrace.Op
module Loc = Gtrace.Loc
module A = Predict.Analysis

let layout = Gen.layout (* warp 4, 8 threads/block, 2 blocks *)
let data = Loc.global 0
let flag = Loc.global 64

let run ?config ops = A.run ?config ~layout ops

let statuses a = List.map (fun (p : A.prediction) -> p.A.status) a.A.predictions

let witness_races (a : A.t) =
  List.for_all
    (fun (p : A.prediction) ->
      match p.A.witness with
      | None -> true
      | Some w ->
          w.Predict.Witness.feasible
          && Barracuda.Report.has_race
               (Gpu_runtime.Replay.run
                  (Gpu_runtime.Replay.of_ops ~layout w.Predict.Witness.ops)))
    a.A.predictions

(* ---- Hand-built traces -------------------------------------------- *)

(* The detector's atomic-atomic elision: the write is only compared to
   the latest atomic, so the earlier atomic's race is invisible in the
   recorded order but confirmed on a reordered witness. *)
let test_atomic_elision_confirmed () =
  let ops =
    [
      Op.Atm { tid = 0; loc = data; value = 1L };
      Op.Endi { warp = 0; mask = 0x1 };
      Op.Atm { tid = 8; loc = data; value = 2L };
      Op.Endi { warp = 2; mask = 0x1 };
      Op.Wr { tid = 8; loc = data; value = 3L };
      Op.Endi { warp = 2; mask = 0x1 };
    ]
  in
  let a = run ops in
  Alcotest.(check int) "recorded order is silent" 0 a.A.observed_race_count;
  Alcotest.(check (list bool)) "one confirmed prediction" [ true ]
    (List.map (fun s -> s = A.Confirmed) (statuses a));
  Alcotest.(check bool) "witness replay races" true (witness_races a)

let handoff scope =
  [
    Op.Atm { tid = 0; loc = data; value = 1L };
    Op.Endi { warp = 0; mask = 0x1 };
    Op.Rel { tid = 0; loc = flag; scope };
    Op.Endi { warp = 0; mask = 0x1 };
    Op.Acq { tid = 8; loc = flag; scope };
    Op.Endi { warp = 2; mask = 0x1 };
    Op.Atm { tid = 8; loc = data; value = 2L };
    Op.Endi { warp = 2; mask = 0x1 };
    Op.Wr { tid = 8; loc = data; value = 3L };
    Op.Endi { warp = 2; mask = 0x1 };
  ]

let test_global_handoff_ordered () =
  let a = run (handoff Op.Global_scope) in
  Alcotest.(check int) "no predictions" 0 (List.length a.A.predictions);
  Alcotest.(check int) "no observed races" 0 a.A.observed_race_count

let test_block_handoff_wrong_scope () =
  (* t0 and t8 are in different blocks: a block-scope release/acquire
     pair synchronizes nothing between them. *)
  let a = run (handoff Op.Block) in
  Alcotest.(check (list bool)) "one confirmed prediction" [ true ]
    (List.map (fun s -> s = A.Confirmed) (statuses a));
  Alcotest.(check bool) "witness replay races" true (witness_races a)

let test_barrier_orders_block () =
  let ops =
    [
      Op.Wr { tid = 0; loc = data; value = 1L };
      Op.Endi { warp = 0; mask = 0x1 };
      Op.Bar { block = 0 };
      Op.Rd { tid = 4; loc = data };
      Op.Endi { warp = 1; mask = 0x1 };
    ]
  in
  let a = run ops in
  Alcotest.(check int) "no predictions" 0 (List.length a.A.predictions)

let test_cross_block_race_is_observed () =
  let ops =
    [
      Op.Wr { tid = 0; loc = data; value = 1L };
      Op.Endi { warp = 0; mask = 0x1 };
      Op.Rd { tid = 8; loc = data };
      Op.Endi { warp = 2; mask = 0x1 };
    ]
  in
  let a = run ops in
  Alcotest.(check int) "recorded order races" 1 a.A.observed_race_count;
  Alcotest.(check (list bool)) "classified as observed" [ true ]
    (List.map (fun s -> s = A.Observed) (statuses a))

let test_same_value_filter () =
  let same v1 v2 =
    [
      Op.Wr { tid = 0; loc = data; value = v1 };
      Op.Wr { tid = 1; loc = data; value = v2 };
      Op.Endi { warp = 0; mask = 0x3 };
    ]
  in
  let benign = run (same 5L 5L) in
  Alcotest.(check int) "same-value pair filtered" 0
    (List.length benign.A.predictions);
  let racy = run (same 5L 6L) in
  Alcotest.(check int) "distinct values reported" 1
    (List.length racy.A.predictions)

(* ---- Schedule-sensitive bug-suite supplement ---------------------- *)

let case_named name =
  List.find (fun (c : Bugsuite.Case.t) -> c.Bugsuite.Case.name = name)
    Bugsuite.Cases.predictive

let online_and_predict (case : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:case.Bugsuite.Case.layout () in
  let args = case.Bugsuite.Case.setup m in
  let det, _ =
    Barracuda.Detector.run ~machine:m case.Bugsuite.Case.kernel args
  in
  let online = Barracuda.Report.has_race (Barracuda.Detector.report det) in
  let m2 = Simt.Machine.create ~layout:case.Bugsuite.Case.layout () in
  let args2 = case.Bugsuite.Case.setup m2 in
  let ops, _ =
    Gtrace.Infer.run ~layout:case.Bugsuite.Case.layout m2
      case.Bugsuite.Case.kernel args2
  in
  (online, A.run ~layout:case.Bugsuite.Case.layout ops)

let check_hidden_race name () =
  let case = case_named name in
  let online, a = online_and_predict case in
  Alcotest.(check bool) "online detector misses the race" false online;
  Alcotest.(check int) "recorded order is silent" 0 a.A.observed_race_count;
  Alcotest.(check bool) "race predicted" true (A.predicted_count a > 0);
  Alcotest.(check int) "every prediction confirmed" (A.predicted_count a)
    (A.confirmed_count a);
  Alcotest.(check bool) "witness replays race through the replay path" true
    (List.for_all
       (fun (p : A.prediction) ->
         match p.A.witness with
         | None -> false
         | Some w ->
             w.Predict.Witness.feasible
             && Barracuda.Report.has_race
                  (Gpu_runtime.Replay.run
                     (Gpu_runtime.Replay.of_ops
                        ~layout:case.Bugsuite.Case.layout
                        w.Predict.Witness.ops)))
       a.A.predictions)

let test_predictive_twin_race_free () =
  let online, a = online_and_predict (case_named "pred_fence_right_scope") in
  Alcotest.(check bool) "online detector silent" false online;
  Alcotest.(check bool) "no races predicted" false (A.has_race a)

let test_predictive_suite_score () =
  let s = Bugsuite.Harness.run_predict Bugsuite.Cases.predictive in
  Alcotest.(check int) "predict scores every supplement case"
    s.Bugsuite.Harness.total s.Bugsuite.Harness.correct;
  (* The online detector must miss every racy supplement case: that is
     what makes them schedule-sensitive. *)
  let online = Bugsuite.Harness.run_barracuda Bugsuite.Cases.predictive in
  List.iter
    (fun (o : Bugsuite.Harness.outcome) ->
      Alcotest.(check bool)
        (o.Bugsuite.Harness.case.Bugsuite.Case.name ^ " online verdict") false
        o.Bugsuite.Harness.reported_race)
    online.Bugsuite.Harness.outcomes

(* ---- Properties over generated programs --------------------------- *)

let prop_witnesses_valid =
  QCheck2.Test.make ~name:"witness schedules are feasible and roundtrip"
    ~count:60 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let ops, _ = Gen.trace_of_program prog in
      let a = run ops in
      List.for_all
        (fun (p : A.prediction) ->
          match p.A.witness with
          | None -> true
          | Some w ->
              let ops_w = w.Predict.Witness.ops in
              w.Predict.Witness.feasible
              && Gtrace.Serialize.of_string
                   (Gtrace.Serialize.to_string ~layout ops_w)
                 = (layout, ops_w))
        a.A.predictions)

let prop_observed_races_enumerated =
  QCheck2.Test.make
    ~name:"every observed race surfaces as an unordered pair" ~count:60
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let ops, _ = Gen.trace_of_program prog in
      let a = run ops in
      a.A.observed_race_count = 0 || a.A.predictions <> [])

let suite =
  [
    Alcotest.test_case "atomic elision confirmed" `Quick
      test_atomic_elision_confirmed;
    Alcotest.test_case "global handoff ordered" `Quick
      test_global_handoff_ordered;
    Alcotest.test_case "wrong-scope handoff predicted" `Quick
      test_block_handoff_wrong_scope;
    Alcotest.test_case "barrier orders a block" `Quick
      test_barrier_orders_block;
    Alcotest.test_case "cross-block race observed" `Quick
      test_cross_block_race_is_observed;
    Alcotest.test_case "same-value filter" `Quick test_same_value_filter;
    Alcotest.test_case "suite: luck-ordered cross-block ww" `Quick
      (check_hidden_race "pred_luck_ordered_xblock_ww");
    Alcotest.test_case "suite: fence at wrong scope" `Quick
      (check_hidden_race "pred_fence_wrong_scope");
    Alcotest.test_case "suite: atomic ordered but unsynced" `Quick
      (check_hidden_race "pred_atomic_ordered_unsynced");
    Alcotest.test_case "suite: right-scope twin race-free" `Quick
      test_predictive_twin_race_free;
    Alcotest.test_case "suite: predict scores the supplement" `Quick
      test_predictive_suite_score;
    Gen.to_alcotest prop_witnesses_valid;
    Gen.to_alcotest prop_observed_races_enumerated;
  ]
