(* Fault injection and resilience: transport integrity (checksums,
   sequence numbers), seeded fault plans through the pipeline, worker
   crash recovery and quarantine in the scheduler, wall-clock
   deadlines, versioned formats, and campaign determinism. *)

module Record = Gpu_runtime.Record
module Wire = Barracuda.Wire
module Report = Barracuda.Report
module Detector = Barracuda.Detector
module Pipeline = Gpu_runtime.Pipeline
module Plan = Fault.Plan
module P = Service.Protocol
module Case = Bugsuite.Case

let ws = Gen.layout.Vclock.Layout.warp_size

let sealed_access ?(mask = (1 lsl ws) - 1) ?(warp = 0) ?(insn = 0) ?(seq = 0)
    () =
  let buf = Bytes.make Record.wire_size '\000' in
  let addrs = Array.init ws (fun i -> 4 * i) in
  Wire.write_access buf ~pos:0 ~kind:Simt.Event.Store ~space:Ptx.Ast.Global
    ~width:4 ~mask ~warp ~insn ~addrs;
  Wire.seal buf ~pos:0 ~seq;
  buf

(* ---- seal / check ------------------------------------------------ *)

let test_seal_check () =
  let buf = sealed_access () in
  Alcotest.(check bool) "sealed record is intact" true
    (Wire.check buf ~pos:0 = Wire.Intact);
  let b = Bytes.copy buf in
  Bytes.set_uint8 b 0 0x42;
  Alcotest.(check bool) "magic" true (Wire.check b ~pos:0 = Wire.Bad_magic);
  let b = Bytes.copy buf in
  Bytes.set_uint8 b 1 (Wire.version + 1);
  Alcotest.(check bool) "version" true
    (Wire.check b ~pos:0 = Wire.Bad_version);
  let b = Bytes.copy buf in
  Bytes.set_uint8 b 30 (Bytes.get_uint8 b 30 lxor 1);
  Alcotest.(check bool) "payload corruption" true
    (Wire.check b ~pos:0 = Wire.Bad_checksum)

(* Any single bit flip that leaves the covered length unchanged must be
   detected — guaranteed structurally by the rotate-XOR checksum.  The
   length-changing bytes (opcode at 2, mask word at 8-11) reshape the
   checksummed stream, so their detection is probabilistic; they are
   pinned by the deterministic sweeps below instead. *)
let prop_single_bit_flip_detected =
  QCheck2.Test.make ~name:"single bit flip in covered region is detected"
    ~count:500
    QCheck2.Gen.(
      tup4 (int_range 1 0xFFFF) (int_range 0 4096) (int_range 0 100_000)
        (pair (int_range 0 0xFFFFFF) (int_range 0 7)))
    (fun (mask, warp, insn, (byte_r, bit)) ->
      let buf = sealed_access ~mask ~warp ~insn ~seq:7 () in
      let covered = Wire.covered_bytes buf ~pos:0 in
      let eligible =
        [ 0; 1; 3; 4; 5; 6; 7 ]
        @ List.init 12 (fun i -> 12 + i)
        @ List.init covered (fun i -> Wire.header_size + i)
      in
      let byte = List.nth eligible (byte_r mod List.length eligible) in
      Bytes.set_uint8 buf byte (Bytes.get_uint8 buf byte lxor (1 lsl bit));
      Wire.check buf ~pos:0 <> Wire.Intact)

let test_mask_bit_flips_detected () =
  (* Mask flips can change the covered-region length itself; the
     avalanched length prefix in the checksum stream catches them.
     Deterministic sweep over all 32 mask bits of a fixed record. *)
  for bit = 0 to 31 do
    let buf = sealed_access ~mask:0x00FF ~seq:1 () in
    let byte = 8 + (bit / 8) in
    Bytes.set_uint8 buf byte (Bytes.get_uint8 buf byte lxor (1 lsl (bit mod 8)));
    Alcotest.(check bool)
      (Printf.sprintf "mask bit %d flip detected" bit)
      true
      (Wire.check buf ~pos:0 <> Wire.Intact)
  done

let test_opcode_bit_flips_detected () =
  (* The opcode also drives the covered length (access vs control);
     sweep all 8 opcode bits of a fixed record. *)
  for bit = 0 to 7 do
    let buf = sealed_access ~seq:1 () in
    Bytes.set_uint8 buf 2 (Bytes.get_uint8 buf 2 lxor (1 lsl bit));
    Alcotest.(check bool)
      (Printf.sprintf "opcode bit %d flip detected" bit)
      true
      (Wire.check buf ~pos:0 <> Wire.Intact)
  done

(* ---- sequence accounting ----------------------------------------- *)

let mk_detector () =
  let k = Gen.kernel_of_program [ Gen.Global_store (0, Gen.Const 1) ] in
  Detector.create ~layout:Gen.layout k

let test_seq_gap_stale_corrupt () =
  let det = mk_detector () in
  let values = Array.make ws 1L in
  let feed ~seq =
    let buf = sealed_access ~seq () in
    Detector.feed_record_from det ~src:0 ~values buf ~pos:0
  in
  feed ~seq:0;
  let i = Report.integrity (Detector.report det) in
  Alcotest.(check bool) "clean start" true
    (i.Report.corrupt = 0 && i.Report.gaps = 0 && i.Report.stale = 0);
  Alcotest.(check bool) "not degraded yet" false
    (Report.degraded (Detector.report det));
  feed ~seq:5;
  (* expected 1, got 5: four records lost *)
  let i = Report.integrity (Detector.report det) in
  Alcotest.(check int) "gap of four" 4 i.Report.gaps;
  feed ~seq:5;
  (* replayed: stale, skipped *)
  let i = Report.integrity (Detector.report det) in
  Alcotest.(check int) "stale duplicate" 1 i.Report.stale;
  let buf = sealed_access ~seq:6 () in
  Bytes.set_uint8 buf 40 (Bytes.get_uint8 buf 40 lxor 4);
  Detector.feed_record_from det ~src:0 ~values buf ~pos:0;
  let i = Report.integrity (Detector.report det) in
  Alcotest.(check int) "corrupt record" 1 i.Report.corrupt;
  Alcotest.(check bool) "degraded" true (Report.degraded (Detector.report det))

let test_per_src_sequences () =
  (* the same seq on different sources is not a duplicate *)
  let det = mk_detector () in
  let values = Array.make ws 1L in
  let buf = sealed_access ~seq:0 () in
  Detector.feed_record_from det ~src:0 ~values buf ~pos:0;
  Detector.feed_record_from det ~src:1 ~values buf ~pos:0;
  let i = Report.integrity (Detector.report det) in
  Alcotest.(check bool) "independent streams" true
    (i.Report.stale = 0 && i.Report.gaps = 0)

let test_orphaned_fi_absorbed () =
  (* a branch_fi whose branch_if was lost upstream must be skipped and
     accounted, not pop the root reconvergence frame or raise *)
  let det = mk_detector () in
  let buf = Bytes.make Record.wire_size '\000' in
  Wire.write_branch_fi buf ~pos:0 ~warp:0 ~insn:0 ~mask:((1 lsl ws) - 1);
  Wire.seal buf ~pos:0 ~seq:0;
  Detector.feed_record_from det ~src:0 ~values:[||] buf ~pos:0;
  let i = Report.integrity (Detector.report det) in
  Alcotest.(check int) "desync counted" 1 i.Report.desync;
  Alcotest.(check bool) "degraded" true (Report.degraded (Detector.report det))

let test_integrity_check_disabled () =
  let k = Gen.kernel_of_program [ Gen.Global_store (0, Gen.Const 1) ] in
  let det =
    Detector.create
      ~config:{ Detector.default_config with check_integrity = false }
      ~layout:Gen.layout k
  in
  let values = Array.make ws 1L in
  let buf = sealed_access ~seq:99 () in
  (* unsealed garbage seq, still processed; no accounting *)
  Detector.feed_record_from det ~src:0 ~values buf ~pos:0;
  Detector.feed_record_from det ~src:0 ~values buf ~pos:0;
  Alcotest.(check bool) "no degradation tracking" false
    (Report.degraded (Detector.report det))

(* ---- transport faults through the pipeline ----------------------- *)

let racy_prog = [ Gen.Global_store (0, Gen.Lane_dependent); Gen.Global_load 0 ]

let run_with_plan ?(prog = racy_prog) plan =
  let k = Gen.kernel_of_program prog in
  let m = Simt.Machine.create ~layout:Gen.layout () in
  let args = Gen.setup m in
  let config =
    {
      Pipeline.default_config with
      queues = 1;
      fault = Some plan;
      detector = { Detector.default_config with max_reports = 100_000 };
    }
  in
  let r = Pipeline.run ~config ~machine:m k args in
  Detector.report r.Pipeline.detector

let test_drop_plan_degrades () =
  let plan = Plan.make { Plan.none with Plan.seed = 7; drop = 0.3 } in
  let report = run_with_plan plan in
  let inj = Plan.injected plan in
  Alcotest.(check bool) "drops injected" true (inj.Plan.drops > 0);
  Alcotest.(check bool) "losses surfaced as gaps" true
    ((Report.integrity report).Report.gaps > 0);
  Alcotest.(check bool) "degraded" true (Report.degraded report)

let test_duplicate_plan_degrades () =
  let plan = Plan.make { Plan.none with Plan.seed = 8; duplicate = 0.4 } in
  let report = run_with_plan plan in
  let inj = Plan.injected plan in
  Alcotest.(check bool) "dups injected" true (inj.Plan.dups > 0);
  Alcotest.(check bool) "dups surfaced as stale" true
    ((Report.integrity report).Report.stale > 0)

let test_delay_plan_degrades () =
  let plan =
    Plan.make { Plan.none with Plan.seed = 19; delay = 0.4; delay_hold = 2 }
  in
  let report = run_with_plan plan in
  let inj = Plan.injected plan in
  Alcotest.(check bool) "delays injected" true (inj.Plan.delays > 0);
  let i = Report.integrity report in
  Alcotest.(check bool) "reorder surfaced" true
    (i.Report.gaps > 0 && i.Report.stale > 0);
  Alcotest.(check bool) "degraded" true (Report.degraded report)

let test_flip_plan_never_silent () =
  (* bit flips may land on uncovered (stale-lane) bytes and stay
     harmless, but a verdict change without the degraded flag is the
     one forbidden outcome *)
  let baseline = Report.has_race (run_with_plan (Plan.make Plan.none)) in
  let plan = Plan.make { Plan.none with Plan.seed = 10; bit_flip = 0.5 } in
  let report = run_with_plan plan in
  let inj = Plan.injected plan in
  Alcotest.(check bool) "flips injected" true (inj.Plan.flips > 0);
  Alcotest.(check bool) "no silent wrong verdict" true
    (Bool.equal (Report.has_race report) baseline || Report.degraded report)

let test_fault_plan_deterministic () =
  let run seed =
    let plan =
      Plan.make
        { Plan.none with Plan.seed; bit_flip = 0.1; drop = 0.1; duplicate = 0.1 }
    in
    let report = run_with_plan plan in
    let i = Report.integrity report in
    (Plan.injected plan, i.Report.corrupt, i.Report.gaps, i.Report.stale)
  in
  Alcotest.(check bool) "same seed, same injections" true (run 3 = run 3);
  Alcotest.(check bool) "different seed, different stream" true
    (run 3 <> run 4)

(* ---- machine faults ---------------------------------------------- *)

let test_machine_faults_applied () =
  let plan =
    Plan.make
      { Plan.none with Plan.seed = 5; reg_flips = 8; fault_window = 8 }
  in
  let report = run_with_plan plan in
  ignore (Report.has_race report);
  let inj = Plan.injected plan in
  Alcotest.(check bool) "register flips applied" true
    (inj.Plan.reg_flips_applied > 0 && inj.Plan.reg_flips_applied <= 8)

(* ---- wall-clock deadline ----------------------------------------- *)

let test_deadline_stops_spin () =
  let b = Ptx.Builder.create ~params:[ "out" ] "spin" in
  let l = Ptx.Builder.fresh_label b in
  Ptx.Builder.place_label b l;
  Ptx.Builder.bra ~uni:true b l;
  let k = Ptx.Builder.finish b in
  let m = Simt.Machine.create ~layout:Gen.layout () in
  let base = Simt.Machine.alloc_global m 16 in
  let deadline_ns = Int64.add (Telemetry.Clock.now_ns ()) 50_000_000L in
  let r =
    Simt.Machine.launch ~max_steps:max_int ~deadline_ns m k
      [| Int64.of_int base |]
  in
  match r.Simt.Machine.status with
  | Simt.Machine.Deadline _ -> ()
  | Simt.Machine.Completed -> Alcotest.fail "spin completed?!"
  | Simt.Machine.Max_steps _ -> Alcotest.fail "step budget hit first"

(* ---- worker crash recovery --------------------------------------- *)

let oneshot_verdict (case : Case.t) =
  let machine = Simt.Machine.create ~layout:case.Case.layout () in
  let args = case.Case.setup machine in
  let det, _ = Detector.run ~machine case.Case.kernel args in
  Report.has_race (Detector.report det)

let scheduler_with_cases ~plan cases =
  let by_name = Hashtbl.create 16 in
  List.iter (fun (c : Case.t) -> Hashtbl.replace by_name c.Case.name c) cases;
  let exec ~job (sub : P.submit) =
    match Hashtbl.find_opt by_name sub.P.payload with
    | None -> P.Failed { job; code = "bad_request"; message = "no such case" }
    | Some case ->
        let race = oneshot_verdict case in
        P.Result
          {
            job;
            outcome =
              {
                P.verdict = (if race then P.Racy else P.Race_free);
                races = 0;
                errors = [];
                cache_hit = false;
                predicted = 0;
                confirmed = 0;
                degraded = false;
                static = false;
                repaired = false;
                fix = "";
                repair_tried = 0;
                detect_ms = 0.0;
              };
            queue_ms = 0.0;
            run_ms = 0.0;
          }
  in
  Service.Scheduler.create
    ~config:
      {
        Service.Scheduler.default_config with
        Service.Scheduler.workers = 2;
        fault = Some plan;
      }
    ~exec ()

let submit_and_collect sched (cases : Case.t list) =
  let n = List.length cases in
  let lock = Mutex.create () in
  let replies = Array.make n None in
  List.iteri
    (fun i (c : Case.t) ->
      Service.Scheduler.submit sched
        (P.submit_defaults ~kind:P.Check c.Case.name) ~reply:(fun resp ->
          Mutex.lock lock;
          replies.(i) <- Some resp;
          Mutex.unlock lock))
    cases;
  Service.Scheduler.stop sched;
  replies

let test_crash_recovery_parity () =
  (* jobs 1 and 3 kill their worker at pickup; the watchdog respawns
     and the requeued jobs must come back with verdicts matching
     one-shot checking *)
  let cases = List.filteri (fun i _ -> i < 6) Bugsuite.Cases.all in
  let plan =
    Plan.make { Plan.none with Plan.seed = 1; crash_once_jobs = [ 1; 3 ] }
  in
  let sched = scheduler_with_cases ~plan cases in
  let replies = submit_and_collect sched cases in
  List.iteri
    (fun i (c : Case.t) ->
      match replies.(i) with
      | Some (P.Result { outcome; _ }) ->
          Alcotest.(check bool)
            (Printf.sprintf "parity for %s" c.Case.name)
            (oneshot_verdict c)
            (outcome.P.verdict = P.Racy)
      | other ->
          Alcotest.failf "case %s: expected a result, got %s" c.Case.name
            (match other with
            | None -> "no reply"
            | Some r -> P.encode_response r))
    cases;
  let counts = Service.Scheduler.counts sched in
  Alcotest.(check int) "two workers respawned" 2
    counts.Service.Scheduler.workers_restarted;
  Alcotest.(check int) "nothing quarantined" 0
    counts.Service.Scheduler.quarantined;
  Alcotest.(check int) "all jobs completed" (List.length cases)
    counts.Service.Scheduler.completed;
  Alcotest.(check bool) "crashes recorded on the plan" true
    ((Plan.injected plan).Plan.crashes = 2)

let test_poison_quarantine () =
  let cases = [ List.hd Bugsuite.Cases.all ] in
  let plan = Plan.make { Plan.none with Plan.seed = 2; poison_jobs = [ 1 ] } in
  let sched = scheduler_with_cases ~plan cases in
  let replies = submit_and_collect sched cases in
  (match replies.(0) with
  | Some (P.Failed { code; message; _ }) ->
      Alcotest.(check string) "quarantine code" "quarantined" code;
      Alcotest.(check bool) "message mentions quarantine" true
        (String.length message > 0)
  | other ->
      Alcotest.failf "expected quarantine, got %s"
        (match other with
        | None -> "no reply"
        | Some r -> P.encode_response r));
  let counts = Service.Scheduler.counts sched in
  Alcotest.(check int) "one quarantined" 1
    counts.Service.Scheduler.quarantined;
  (* initial attempt + max_job_restarts retries, each crashing a worker *)
  Alcotest.(check int) "three respawns" 3
    counts.Service.Scheduler.workers_restarted;
  Alcotest.(check int) "counted as failed" 1 counts.Service.Scheduler.failed

(* ---- versioned formats ------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_trace_version_rejected () =
  match
    Gtrace.Serialize.of_string
      "# barracuda-trace v9 warp_size=4 threads_per_block=8 blocks=2\n"
  with
  | _ -> Alcotest.fail "stale trace version accepted"
  | exception Gtrace.Serialize.Parse_error { message; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "names both versions: %s" message)
        true
        (contains message "version 9")

let test_record_version_rejected () =
  let buf = sealed_access () in
  Bytes.set_uint8 buf 1 (Wire.version + 1);
  match Record.of_bytes ~warp_size:ws buf with
  | _ -> Alcotest.fail "stale record version accepted"
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "names the version: %s" msg)
        true
        (contains msg "version")

(* ---- campaign ----------------------------------------------------- *)

let test_campaign_quick_deterministic () =
  let run () =
    Campaign.run ~config:{ Campaign.seed = 42; quick = true; trials = 1 } ()
  in
  let a = run () and b = run () in
  Alcotest.(check string) "bitwise reproducible" (Campaign.to_json a)
    (Campaign.to_json b);
  Alcotest.(check bool) "no silent corruption, service healed" true
    (Campaign.ok a)

let suite =
  [
    Alcotest.test_case "seal and check" `Quick test_seal_check;
    Alcotest.test_case "mask bit flips detected" `Quick
      test_mask_bit_flips_detected;
    Alcotest.test_case "opcode bit flips detected" `Quick
      test_opcode_bit_flips_detected;
    Alcotest.test_case "seq gap/stale/corrupt accounting" `Quick
      test_seq_gap_stale_corrupt;
    Alcotest.test_case "per-src sequences" `Quick test_per_src_sequences;
    Alcotest.test_case "orphaned branch_fi absorbed" `Quick
      test_orphaned_fi_absorbed;
    Alcotest.test_case "integrity check disabled" `Quick
      test_integrity_check_disabled;
    Alcotest.test_case "drop plan degrades" `Quick test_drop_plan_degrades;
    Alcotest.test_case "duplicate plan degrades" `Quick
      test_duplicate_plan_degrades;
    Alcotest.test_case "delay plan degrades" `Quick test_delay_plan_degrades;
    Alcotest.test_case "flips never silently wrong" `Quick
      test_flip_plan_never_silent;
    Alcotest.test_case "fault plans are seeded" `Quick
      test_fault_plan_deterministic;
    Alcotest.test_case "machine faults applied" `Quick
      test_machine_faults_applied;
    Alcotest.test_case "deadline stops a spin" `Quick test_deadline_stops_spin;
    Alcotest.test_case "crash recovery parity" `Quick
      test_crash_recovery_parity;
    Alcotest.test_case "poison job quarantined" `Quick test_poison_quarantine;
    Alcotest.test_case "trace version rejected" `Quick
      test_trace_version_rejected;
    Alcotest.test_case "record version rejected" `Quick
      test_record_version_rejected;
    Alcotest.test_case "campaign determinism" `Quick
      test_campaign_quick_deterministic;
  ]
  @ List.map Gen.to_alcotest [ prop_single_bit_flip_detected ]
