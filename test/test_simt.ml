(* Execution-semantics tests for the SIMT machine: memory, SIMT stack,
   arithmetic, divergence, barriers, atomics, special registers. *)

module Ast = Ptx.Ast
module B = Ptx.Builder

let lay = Vclock.Layout.make ~warp_size:4 ~threads_per_block:8 ~blocks:2

(* ---- Memory -------------------------------------------------------- *)

let test_memory_widths () =
  let m = Simt.Memory.create () in
  Simt.Memory.write m ~addr:0 ~width:4 0x01020304L;
  Alcotest.(check int64) "little endian byte" 0x04L
    (Simt.Memory.read m ~addr:0 ~width:1);
  Alcotest.(check int64) "middle bytes" 0x0203L
    (Simt.Memory.read m ~addr:1 ~width:2);
  Alcotest.(check int64) "unwritten reads zero" 0L
    (Simt.Memory.read m ~addr:100 ~width:8);
  Simt.Memory.write m ~addr:2 ~width:1 0xFFL;
  Alcotest.(check int64) "partial overwrite" 0x01FF0304L
    (Simt.Memory.read m ~addr:0 ~width:4)

(* ---- SIMT stack ----------------------------------------------------- *)

let test_stack_diverge_pop () =
  let st = Simt.Simt_stack.create ~pc:0 ~mask:0xF in
  Simt.Simt_stack.diverge st ~reconv:10 ~first:(1, 0x3) ~second:(5, 0xC);
  Alcotest.(check int) "first path mask" 0x3 (Simt.Simt_stack.active_mask st);
  Alcotest.(check int) "first path pc" 1 (Simt.Simt_stack.pc st);
  Simt.Simt_stack.set_pc st 10;
  (match Simt.Simt_stack.try_pop st with
  | Some (Simt.Simt_stack.Switched e) ->
      Alcotest.(check int) "switched to second path" 0xC e.Simt.Simt_stack.mask
  | _ -> Alcotest.fail "expected a switch");
  Simt.Simt_stack.set_pc st 10;
  match Simt.Simt_stack.try_pop st with
  | Some (Simt.Simt_stack.Reconverged e) ->
      Alcotest.(check int) "reconverged mask" 0xF e.Simt.Simt_stack.mask
  | _ -> Alcotest.fail "expected reconvergence"

let test_stack_retire () =
  let st = Simt.Simt_stack.create ~pc:0 ~mask:0xF in
  Simt.Simt_stack.diverge st ~reconv:10 ~first:(1, 0x3) ~second:(5, 0xC);
  Simt.Simt_stack.retire st 0x1;
  Alcotest.(check int) "retired lane removed" 0x2
    (Simt.Simt_stack.active_mask st);
  Alcotest.(check bool) "not done" false (Simt.Simt_stack.is_done st);
  Simt.Simt_stack.retire st 0xE;
  Alcotest.(check bool) "all retired" true (Simt.Simt_stack.is_done st)

let test_stack_invalid_diverge () =
  let st = Simt.Simt_stack.create ~pc:0 ~mask:0xF in
  Alcotest.(check bool) "overlapping masks rejected" true
    (match Simt.Simt_stack.diverge st ~reconv:9 ~first:(1, 0x3) ~second:(2, 0x2) with
    | exception Invalid_argument _ -> true
    | () -> false)

(* ---- Machine execution --------------------------------------------- *)

let run_kernel ?(lay = lay) build args_of =
  let m = Simt.Machine.create ~layout:lay () in
  let b = B.create ~params:[ "out" ] ~shared:[ ("smem", 64) ] "t" in
  build b;
  let k = B.finish b in
  let args = args_of m in
  let r = Simt.Machine.launch m k args in
  (m, r)

let read_out m base i = Simt.Machine.peek m ~addr:(base + (4 * i)) ~width:4

let test_exec_arithmetic () =
  let base = ref 0 in
  let m, r =
    run_kernel
      (fun b ->
        let g = B.global_tid b in
        let v = B.fresh_reg b in
        (* v = (g*3 + 1) min 10 *)
        B.mad b v (B.reg g) (B.imm 3) (B.imm 1);
        B.binop b Ast.B_min v (B.reg v) (B.imm 10);
        let a = B.fresh_reg ~cls:"rd" b in
        B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
        B.st b (B.reg a) (B.reg v))
      (fun m ->
        base := Simt.Machine.alloc_global m 256;
        [| Int64.of_int !base |])
  in
  Alcotest.(check bool) "completed" true (r.Simt.Machine.status = Simt.Machine.Completed);
  Alcotest.(check int64) "thread 0" 1L (read_out m !base 0);
  Alcotest.(check int64) "thread 2" 7L (read_out m !base 2);
  Alcotest.(check int64) "thread 5 clamped" 10L (read_out m !base 5)

let test_exec_divergence_and_selp () =
  let base = ref 0 in
  let m, _ =
    run_kernel
      (fun b ->
        let g = B.global_tid b in
        let parity = B.fresh_reg b in
        B.binop b Ast.B_and parity (B.reg g) (B.imm 1);
        let v = B.fresh_reg b in
        B.if_else b Ast.C_eq (B.reg parity) (B.imm 0)
          (fun b -> B.mov b v (B.imm 100))
          (fun b -> B.mov b v (B.imm 200));
        let a = B.fresh_reg ~cls:"rd" b in
        B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
        B.st b (B.reg a) (B.reg v))
      (fun m ->
        base := Simt.Machine.alloc_global m 256;
        [| Int64.of_int !base |])
  in
  Alcotest.(check int64) "even lane" 100L (read_out m !base 0);
  Alcotest.(check int64) "odd lane" 200L (read_out m !base 1)

let test_exec_atomics_serialize () =
  let base = ref 0 in
  let m, _ =
    run_kernel
      (fun b ->
        let old = B.fresh_reg b in
        B.atom b Ast.A_add old (B.sym "out") (B.imm 1))
      (fun m ->
        base := Simt.Machine.alloc_global m 16;
        [| Int64.of_int !base |])
  in
  Alcotest.(check int64) "all increments land" 16L (read_out m !base 0)

let test_exec_cas_exch () =
  let base = ref 0 in
  let m, _ =
    run_kernel
      (fun b ->
        (* thread 0: cas 0->7 succeeds; thread 1: exch to 9 *)
        B.if_ b Ast.C_eq (Ast.Sreg Ast.Tid) (B.imm 0) (fun b ->
            B.if_ b Ast.C_eq (Ast.Sreg Ast.Ctaid) (B.imm 0) (fun b ->
                let o = B.fresh_reg b in
                B.atom_cas b o (B.sym "out") (B.imm 0) (B.imm 7);
                let o2 = B.fresh_reg b in
                B.atom_cas b o2 (B.sym "out") (B.imm 0) (B.imm 5);
                (* second cas must fail: record old value *)
                B.st b ~offset:4 (B.sym "out") (B.reg o2))))
      (fun m ->
        base := Simt.Machine.alloc_global m 16;
        [| Int64.of_int !base |])
  in
  Alcotest.(check int64) "cas installed" 7L (read_out m !base 0);
  Alcotest.(check int64) "failed cas returned old" 7L (read_out m !base 1)

let test_exec_barrier_phases () =
  let base = ref 0 in
  let m, r =
    run_kernel
      (fun b ->
        (* s[tid] = tid; bar; out[gtid] = s[(tid+1) mod 8] *)
        let sa = B.fresh_reg ~cls:"rd" b in
        B.mad b sa (Ast.Sreg Ast.Tid) (B.imm 4) (B.sym "smem");
        B.st ~space:Ast.Shared b (B.reg sa) (Ast.Sreg Ast.Tid);
        B.bar b;
        let n = B.fresh_reg b in
        B.binop b Ast.B_add n (Ast.Sreg Ast.Tid) (B.imm 1);
        B.binop b Ast.B_and n (B.reg n) (B.imm 7);
        let na = B.fresh_reg ~cls:"rd" b in
        B.mad b na (B.reg n) (B.imm 4) (B.sym "smem");
        let v = B.fresh_reg b in
        B.ld ~space:Ast.Shared b v (B.reg na);
        let g = B.global_tid b in
        let a = B.fresh_reg ~cls:"rd" b in
        B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
        B.st b (B.reg a) (B.reg v))
      (fun m ->
        base := Simt.Machine.alloc_global m 256;
        [| Int64.of_int !base |])
  in
  Alcotest.(check bool) "no divergence" false r.Simt.Machine.barrier_divergence;
  Alcotest.(check int64) "rotated value" 1L (read_out m !base 0);
  Alcotest.(check int64) "wraparound" 0L (read_out m !base 7);
  (* block 1 uses its own shared memory *)
  Alcotest.(check int64) "block 1 rotated" 1L (read_out m !base 8)

let test_exec_barrier_divergence_flag () =
  let _, r =
    run_kernel
      (fun b ->
        B.if_ b Ast.C_lt (Ast.Sreg Ast.Tid) (B.imm 4) (fun b -> B.bar b))
      (fun m ->
        let base = Simt.Machine.alloc_global m 16 in
        [| Int64.of_int base |])
  in
  Alcotest.(check bool) "divergence detected" true
    r.Simt.Machine.barrier_divergence

let test_exec_special_registers () =
  let base = ref 0 in
  let m, _ =
    run_kernel
      (fun b ->
        let g = B.global_tid b in
        let a = B.fresh_reg ~cls:"rd" b in
        B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
        let v = B.fresh_reg b in
        (* encode laneid + 10*warpid + 100*ctaid *)
        B.mad b v (Ast.Sreg Ast.Warpid) (B.imm 10) (Ast.Sreg Ast.Laneid);
        B.mad b v (Ast.Sreg Ast.Ctaid) (B.imm 100) (B.reg v);
        B.st b (B.reg a) (B.reg v))
      (fun m ->
        base := Simt.Machine.alloc_global m 256;
        [| Int64.of_int !base |])
  in
  (* thread 5 = lane 1 of warp 1 in block 0 *)
  Alcotest.(check int64) "thread 5" 11L (read_out m !base 5);
  (* thread 14 = gtid 14, block 1, warp 1, lane 2 *)
  Alcotest.(check int64) "thread 14" 112L (read_out m !base 14)

let test_exec_loop_trip_counts () =
  let base = ref 0 in
  let m, _ =
    run_kernel
      (fun b ->
        let g = B.global_tid b in
        (* each thread loops tid+1 times *)
        let limit = B.fresh_reg b in
        B.binop b Ast.B_add limit (Ast.Sreg Ast.Tid) (B.imm 1);
        let i = B.fresh_reg b in
        B.mov b i (B.imm 0);
        B.while_ b Ast.C_lt
          (fun _ -> (B.reg i, B.reg limit))
          (fun b -> B.binop b Ast.B_add i (B.reg i) (B.imm 1));
        let a = B.fresh_reg ~cls:"rd" b in
        B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
        B.st b (B.reg a) (B.reg i))
      (fun m ->
        base := Simt.Machine.alloc_global m 256;
        [| Int64.of_int !base |])
  in
  for t = 0 to 7 do
    Alcotest.(check int64)
      (Printf.sprintf "thread %d trips" t)
      (Int64.of_int (t + 1))
      (read_out m !base t)
  done

let test_exec_max_steps () =
  let _, r =
    run_kernel
      (fun b ->
        let l = B.fresh_label b in
        B.place_label b l;
        B.bra ~uni:true b l)
      (fun m ->
        let base = Simt.Machine.alloc_global m 16 in
        [| Int64.of_int base |])
  in
  ignore r;
  let m2 = Simt.Machine.create ~layout:lay () in
  let b = B.create ~params:[ "out" ] "spin" in
  let l = B.fresh_label b in
  B.place_label b l;
  B.bra ~uni:true b l;
  let k = B.finish b in
  let base = Simt.Machine.alloc_global m2 16 in
  let r2 = Simt.Machine.launch ~max_steps:1000 m2 k [| Int64.of_int base |] in
  match r2.Simt.Machine.status with
  | Simt.Machine.Max_steps _ | Simt.Machine.Deadline _ -> ()
  | Simt.Machine.Completed -> Alcotest.fail "infinite loop terminated?!"

let test_exec_wrong_arity () =
  let m = Simt.Machine.create ~layout:lay () in
  let b = B.create ~params:[ "a"; "b" ] "two" in
  B.ret b;
  let k = B.finish b in
  Alcotest.(check bool) "arity mismatch rejected" true
    (match Simt.Machine.launch m k [| 0L |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_exec_deterministic () =
  let run () =
    let m = Simt.Machine.create ~layout:lay () in
    let b = B.create ~params:[ "out" ] "det" in
    let old = B.fresh_reg b in
    B.atom b Ast.A_add old (B.sym "out") (B.imm 1);
    let g = B.global_tid b in
    let a = B.fresh_reg ~cls:"rd" b in
    B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
    B.st b ~offset:4 (B.reg a) (B.reg old);
    let k = B.finish b in
    let base = Simt.Machine.alloc_global m 256 in
    let events = ref [] in
    let _ =
      Simt.Machine.launch m k [| Int64.of_int base |] ~on_event:(fun e ->
          events := Format.asprintf "%a" Simt.Event.pp e :: !events)
    in
    !events
  in
  Alcotest.(check (list string)) "event streams identical" (run ()) (run ())

let test_exec_guarded_ret_divergence () =
  (* odd lanes retire inside a divergent path; the surviving lanes must
     still reconverge, write, and reach the barrier without hanging *)
  let base = ref 0 in
  let m, r =
    run_kernel
      (fun b ->
        let parity = B.fresh_reg b in
        B.binop b Ast.B_and parity (Ast.Sreg Ast.Tid) (B.imm 1);
        let p = B.fresh_reg ~cls:"p" b in
        B.setp b Ast.C_ne p (B.reg parity) (B.imm 0);
        B.emit ~guard:(true, p) b Ast.Ret;
        let g = B.global_tid b in
        let a = B.fresh_reg ~cls:"rd" b in
        B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
        B.st b (B.reg a) (B.imm 9))
      (fun m ->
        base := Simt.Machine.alloc_global m 256;
        [| Int64.of_int !base |])
  in
  Alcotest.(check bool) "completed" true
    (r.Simt.Machine.status = Simt.Machine.Completed);
  Alcotest.(check int64) "even lane wrote" 9L (read_out m !base 0);
  Alcotest.(check int64) "odd lane retired silently" 0L (read_out m !base 1)

let test_detector_survives_retired_paths () =
  (* all lanes of a divergent path retire: the detector must stay in
     sync with the SIMT stack (mask-0 pops are still events) *)
  let lay = Vclock.Layout.make ~warp_size:4 ~threads_per_block:8 ~blocks:1 in
  let m = Simt.Machine.create ~layout:lay () in
  let b = B.create ~params:[ "out" ] "retire_path" in
  B.if_ b Ast.C_lt (Ast.Sreg Ast.Tid) (B.imm 2) (fun b -> B.ret b);
  let g = B.global_tid b in
  let a = B.fresh_reg ~cls:"rd" b in
  B.mad b a (B.reg g) (B.imm 4) (B.sym "out");
  B.st b (B.reg a) (Ast.Sreg Ast.Tid);
  let k = B.finish b in
  let out = Simt.Machine.alloc_global m 256 in
  let det, r = Barracuda.Detector.run ~machine:m k [| Int64.of_int out |] in
  Alcotest.(check bool) "completed" true
    (r.Simt.Machine.status = Simt.Machine.Completed);
  Alcotest.(check bool) "no race" false
    (Barracuda.Report.has_race (Barracuda.Detector.report det))

let prop_generated_kernels_complete =
  QCheck2.Test.make ~name:"generated kernels run to completion" ~count:200
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let m = Simt.Machine.create ~layout:Gen.layout () in
      let k = Gen.kernel_of_program prog in
      let args = Gen.setup m in
      let r = Simt.Machine.launch ~max_steps:200_000 m k args in
      r.Simt.Machine.status = Simt.Machine.Completed)

let suite =
  [
    Alcotest.test_case "memory widths" `Quick test_memory_widths;
    Alcotest.test_case "stack diverge/pop" `Quick test_stack_diverge_pop;
    Alcotest.test_case "stack retire" `Quick test_stack_retire;
    Alcotest.test_case "stack invalid diverge" `Quick test_stack_invalid_diverge;
    Alcotest.test_case "exec arithmetic" `Quick test_exec_arithmetic;
    Alcotest.test_case "exec divergence" `Quick test_exec_divergence_and_selp;
    Alcotest.test_case "exec atomics serialize" `Quick test_exec_atomics_serialize;
    Alcotest.test_case "exec cas/exch" `Quick test_exec_cas_exch;
    Alcotest.test_case "exec barrier phases" `Quick test_exec_barrier_phases;
    Alcotest.test_case "exec barrier divergence" `Quick
      test_exec_barrier_divergence_flag;
    Alcotest.test_case "exec special registers" `Quick test_exec_special_registers;
    Alcotest.test_case "exec loop trip counts" `Quick test_exec_loop_trip_counts;
    Alcotest.test_case "exec max steps" `Quick test_exec_max_steps;
    Alcotest.test_case "exec wrong arity" `Quick test_exec_wrong_arity;
    Alcotest.test_case "exec guarded ret divergence" `Quick
      test_exec_guarded_ret_divergence;
    Alcotest.test_case "detector survives retired paths" `Quick
      test_detector_survives_retired_paths;
    Alcotest.test_case "exec deterministic" `Quick test_exec_deterministic;
  ]
  @ List.map Gen.to_alcotest [ prop_generated_kernels_complete ]
