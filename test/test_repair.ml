(* The automated repair engine (lib/repair): diagnosis, candidate
   search, and the validation gauntlet.  The load-bearing claims:

   - repair is a no-op on race-free kernels, and a fixed point — the
     kernel a fix produces diagnoses clean, so re-repairing it is a
     no-op too;
   - an accepted fix really is race-free under the unchanged detector,
     serial and sharded, and survives a lossy-transport fault slice;
   - the whole search is deterministic for a fixed seed;
   - the bug-suite scoreboard meets the paper target: at least 20 racy
     cases auto-fixed, none unfixable. *)

module Engine = Repair.Engine
module Report = Barracuda.Report

let quick_config =
  { Engine.default_config with Engine.max_steps = 200_000 }

let case_named name =
  match
    List.find_opt (fun (c : Bugsuite.Case.t) -> c.Bugsuite.Case.name = name)
      Bugsuite.Cases.all
  with
  | Some c -> c
  | None -> Alcotest.failf "bug-suite case %s disappeared" name

let repair_case ?(config = quick_config) (c : Bugsuite.Case.t) =
  Engine.repair ~config ~layout:c.Bugsuite.Case.layout
    ~setup:c.Bugsuite.Case.setup c.Bugsuite.Case.kernel

let fix_of name r =
  match r.Engine.verdict with
  | Engine.Fixed f -> f
  | v ->
      Alcotest.failf "%s: expected a fix, got %s" name (Engine.verdict_name v)

(* ---- no-op on race-free input ------------------------------------ *)

let clean_src =
  {|
.visible .entry each_own_slot (.param .u64 out)
{
    mad.lo.s64 %rdt, %ctaid.x, %ntid.x, %tid.x;
    mad.lo.s64 %rd1, %rdt, 4, out;
    st.global.u32 [%rd1], %rdt;
    ld.global.u32 %r1, [%rd1];
    ret;
}
|}

let test_clean_noop () =
  let kernel = Ptx.Parser.kernel_of_string clean_src in
  let layout = Vclock.Layout.make ~warp_size:32 ~threads_per_block:64 ~blocks:2 in
  let setup m = [| Int64.of_int (Simt.Machine.alloc_global m 4096) |] in
  let r = Engine.repair ~config:quick_config ~layout ~setup kernel in
  Alcotest.(check string)
    "verdict" "already-clean"
    (Engine.verdict_name r.Engine.verdict);
  Alcotest.(check int) "no candidates tried" 0 r.Engine.candidates_tried

(* ---- fixed point: repair(repair k) = no-op ----------------------- *)

let test_repair_fixed_point () =
  let c = case_named "ww_shared_inter_warp" in
  let r = repair_case c in
  let f = fix_of c.Bugsuite.Case.name r in
  let r2 =
    Engine.repair ~config:quick_config ~layout:c.Bugsuite.Case.layout
      ~setup:c.Bugsuite.Case.setup f.Engine.kernel
  in
  Alcotest.(check string)
    "repaired kernel re-repairs to a no-op" "already-clean"
    (Engine.verdict_name r2.Engine.verdict)

(* ---- the accepted fix stays clean off the validation path -------- *)

let test_repaired_clean_sharded_and_faulty () =
  let c = case_named "rw_shared_inter_warp" in
  let f = fix_of c.Bugsuite.Case.name (repair_case c) in
  (* 4 shards — validation itself only ran 2 *)
  let machine = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup machine in
  let sconfig = { Shard.Pipeline.default_config with shards = 4 } in
  let sresult =
    Shard.Pipeline.run_sharded ~config:sconfig ~max_steps:200_000 ~machine
      f.Engine.kernel args
  in
  Alcotest.(check bool)
    "no race under 4 shards" false
    (Report.has_race sresult.Shard.Pipeline.report);
  (* a fault slice at seeds validation never used *)
  for i = 0 to 2 do
    let plan =
      Fault.Plan.make
        {
          Fault.Plan.none with
          Fault.Plan.seed = 1000 + i;
          drop = 0.02;
          duplicate = 0.03;
        }
    in
    let machine = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
    let args = c.Bugsuite.Case.setup machine in
    let pconfig =
      { Gpu_runtime.Pipeline.default_config with fault = Some plan }
    in
    let result =
      Gpu_runtime.Pipeline.run ~config:pconfig ~max_steps:200_000 ~machine
        f.Engine.kernel args
    in
    let report = Gpu_runtime.Pipeline.report result in
    if Report.has_race report && not (Report.degraded report) then
      Alcotest.failf "fault seed %d: undegraded race on the repaired kernel"
        (1000 + i)
  done

(* ---- determinism ------------------------------------------------- *)

let test_repair_deterministic () =
  let c = case_named "lock_cta_fence_cross_block" in
  let r1 = repair_case c in
  let r2 = repair_case c in
  Alcotest.(check string)
    "same verdict"
    (Engine.verdict_name r1.Engine.verdict)
    (Engine.verdict_name r2.Engine.verdict);
  let f1 = fix_of c.Bugsuite.Case.name r1
  and f2 = fix_of c.Bugsuite.Case.name r2 in
  Alcotest.(check string)
    "same fix description" f1.Engine.description f2.Engine.description;
  Alcotest.(check string) "same printed patch" f1.Engine.ptx f2.Engine.ptx;
  Alcotest.(check int)
    "same search trail" r1.Engine.candidates_tried r2.Engine.candidates_tried;
  Alcotest.(check (list (pair string string)))
    "same rejections" r1.Engine.rejected r2.Engine.rejected

(* ---- insn ids in race reports (the diagnosis depends on them) ---- *)

let test_race_reports_carry_insn_ids () =
  let c = case_named "ww_shared_inter_warp" in
  let machine = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup machine in
  let det, _ =
    Barracuda.Detector.run ~machine c.Bugsuite.Case.kernel args
  in
  let races =
    List.filter_map
      (function Report.Race r -> Some r | Report.Barrier_divergence _ -> None)
      (Report.errors (Barracuda.Detector.report det))
  in
  Alcotest.(check bool) "some race reported" true (races <> []);
  List.iter
    (fun (r : Report.race) ->
      let n = Array.length c.Bugsuite.Case.kernel.Ptx.Ast.body in
      if r.Report.cur_insn < 0 || r.Report.cur_insn >= n then
        Alcotest.failf "cur_insn %d out of range" r.Report.cur_insn;
      if r.Report.prev_insn < 0 || r.Report.prev_insn >= n then
        Alcotest.failf "prev_insn %d out of range" r.Report.prev_insn)
    races

(* ---- the scoreboard ---------------------------------------------- *)

let test_scoreboard () =
  let score = Bugsuite.Harness.run_repair ~config:quick_config Bugsuite.Cases.all in
  if score.Bugsuite.Harness.fixed < 20 then
    Alcotest.failf "only %d cases auto-fixed (target: at least 20)"
      score.Bugsuite.Harness.fixed;
  Alcotest.(check int) "no unfixable cases" 0 score.Bugsuite.Harness.unfixable;
  Alcotest.(check int)
    "every case accounted for"
    (List.length Bugsuite.Cases.all)
    (score.Bugsuite.Harness.fixed + score.Bugsuite.Harness.clean
    + score.Bugsuite.Harness.unfixable);
  (* no fix may introduce barrier divergence: every fixed case that did
     not already expect divergence runs divergence-free *)
  List.iter
    (fun (o : Bugsuite.Harness.repair_outcome) ->
      match o.Bugsuite.Harness.result.Engine.verdict with
      | Engine.Fixed f when not o.Bugsuite.Harness.case.Bugsuite.Case.expect_bardiv
        ->
          let c = o.Bugsuite.Harness.case in
          let machine = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
          let args = c.Bugsuite.Case.setup machine in
          let result =
            Gpu_runtime.Pipeline.run ~max_steps:200_000 ~machine
              f.Engine.kernel args
          in
          let report = Gpu_runtime.Pipeline.report result in
          if
            result.Gpu_runtime.Pipeline.machine_result
              .Simt.Machine.barrier_divergence
            || List.exists
                 (function
                   | Report.Barrier_divergence _ -> true
                   | Report.Race _ -> false)
                 (Report.errors report)
          then
            Alcotest.failf "%s: accepted fix introduces barrier divergence"
              c.Bugsuite.Case.name
      | _ -> ())
    score.Bugsuite.Harness.repair_outcomes

let suite =
  [
    Alcotest.test_case "race-free kernel: repair is a no-op" `Quick
      test_clean_noop;
    Alcotest.test_case "repair is a fixed point" `Quick test_repair_fixed_point;
    Alcotest.test_case "repaired kernel clean under 4 shards + fault slice"
      `Quick test_repaired_clean_sharded_and_faulty;
    Alcotest.test_case "repair is deterministic" `Quick
      test_repair_deterministic;
    Alcotest.test_case "race reports carry static insn ids" `Quick
      test_race_reports_carry_insn_ids;
    Alcotest.test_case "bug-suite scoreboard: >=20 fixed, none unfixable"
      `Slow test_scoreboard;
  ]
