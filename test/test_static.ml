(* The static race analysis (lib/static): affine address
   classification, barrier phases, and the three verdicts.  The
   load-bearing claim is soundness — dropping the logging for every
   [Safe] access must leave the detected race set bitwise unchanged on
   the whole bug suite, serial and sharded. *)

module Pipeline = Gpu_runtime.Pipeline
module SPipeline = Shard.Pipeline
module Report = Barracuda.Report
module A = Static.Analysis

(* ---- race-set extraction (as in test_shard) ---------------------- *)

type race_key = {
  loc : Gtrace.Loc.t;
  prev_tid : int;
  prev_kind : Report.access_kind;
  cur_tid : int;
  cur_kind : Report.access_kind;
}

let race_set report =
  Report.errors report
  |> List.filter_map (function
       | Report.Race r ->
           Some
             {
               loc = r.Report.loc;
               prev_tid = r.Report.prev_tid;
               prev_kind = r.Report.prev_kind;
               cur_tid = r.Report.cur_tid;
               cur_kind = r.Report.cur_kind;
             }
       | Report.Barrier_divergence _ -> None)
  |> List.sort_uniq Stdlib.compare

let detector_config =
  { Barracuda.Detector.default_config with max_reports = 100000 }

(* Block-local pruning is off in both runs so the only difference is
   the static tier — the property under test in isolation. *)
let serial_report ~static (c : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup m in
  let config =
    {
      Pipeline.default_config with
      queues = 1;
      prune = false;
      static_prune = static;
      detector = detector_config;
    }
  in
  let r = Pipeline.run ~config ~machine:m c.Bugsuite.Case.kernel args in
  Pipeline.report r

let sharded_report ~static ~shards (c : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup m in
  let config =
    {
      SPipeline.default_config with
      SPipeline.shards;
      prune = false;
      static_prune = static;
      detector = detector_config;
    }
  in
  let r =
    SPipeline.run_sharded ~config ~machine:m c.Bugsuite.Case.kernel args
  in
  r.SPipeline.report

(* ---- affine classification --------------------------------------- *)

let parse src = Ptx.Parser.kernel_of_string src

let vecadd_src =
  {|
.visible .entry vecadd (.param .u64 a, .param .u64 b)
{
    mad.lo.s64 %rdt, %ctaid.x, %ntid.x, %tid.x;
    mad.lo.s64 %rda, %rdt, 4, a;
    mad.lo.s64 %rdb, %rdt, 4, b;
    ld.global.u32 %r1, [%rda];
    ld.global.u32 %r2, [%rdb];
    add.s32 %r3, %r1, %r2;
    st.global.u32 [%rda], %r3;
    ret;
}
|}

let test_vecadd_all_safe () =
  let a = A.analyze (parse vecadd_src) in
  let safe, racy, unknown = A.counts a in
  Alcotest.(check (triple int int int)) "3 safe, nothing else" (3, 0, 0)
    (safe, racy, unknown);
  Alcotest.(check bool) "flat-gtid accesses are lane-affine" true
    (A.klass a 3 = A.Lane_affine);
  (* The read-write base prunes as disjoint, the read-only one as
     read-only. *)
  Alcotest.(check bool) "a[] is disjoint" true
    (A.verdict a 3 = Some (A.Safe A.Disjoint_footprints));
  Alcotest.(check bool) "b[] is read-only" true
    (A.verdict a 4 = Some (A.Safe A.Read_only));
  Alcotest.(check bool) "no racy pairs" true (A.pairs a = [])

(* Control flow must not defeat the affine dataflow: the same
   per-thread accesses behind a guarded bounds-check branch (three
   blocks) keep their disjointness proofs.  Regression test for the
   fixpoint seeding bug that pre-seeded the entry block's in state,
   never computed its out state, and so left every later block at
   Top. *)
let vecadd_branch_src =
  {|
.visible .entry vecadd_branch (.param .u64 a)
{
    mad.lo.s64 %rdt, %ctaid.x, %ntid.x, %tid.x;
    setp.ge.s64 %p1, %rdt, 1024;
    @%p1 bra L_done;
    mad.lo.s64 %rda, %rdt, 4, a;
    ld.global.u32 %r1, [%rda];
    add.s32 %r2, %r1, 1;
    st.global.u32 [%rda], %r2;
L_done:
    ret;
}
|}

let test_branch_keeps_disjoint () =
  let a = A.analyze (parse vecadd_branch_src) in
  Alcotest.(check bool) "load past the branch is lane-affine" true
    (A.klass a 4 = A.Lane_affine);
  Alcotest.(check bool) "store past the branch is disjoint-safe" true
    (A.verdict a 6 = Some (A.Safe A.Disjoint_footprints));
  let safe, racy, unknown = A.counts a in
  Alcotest.(check (triple int int int)) "both accesses safe" (2, 0, 0)
    (safe, racy, unknown)

(* The dual: a diamond whose paths leave different values in the
   address register must join to Top, not pick a side — the store
   falls back to dynamic checking. *)
let diamond_src =
  {|
.visible .entry diamond (.param .u64 out)
{
    .shared .align 4 .b8 buf[64];
    mov.s32 %r1, 1;
    setp.gt.s32 %p1, %tid.x, 15;
    @%p1 bra L_hi;
    mov.s64 %rdo, buf;
    bra.uni L_join;
L_hi:
    add.s64 %rdo, buf, 4;
L_join:
    st.shared.u32 [%rdo], %r1;
    ret;
}
|}

let test_diamond_join_is_top () =
  let a = A.analyze (parse diamond_src) in
  Alcotest.(check bool) "conflicting join leaves the address unknown" true
    (A.klass a 6 = A.Unknown_addr);
  Alcotest.(check bool) "store is left for dynamic checking" true
    (A.verdict a 6 = Some A.Unknown)

let uniform_safe_src =
  {|
.visible .entry uniform_safe (.param .u64 cfg, .param .u64 out)
{
    .shared .align 4 .b8 tile[256];
    ld.global.u32 %r1, [cfg];
    mad.lo.s64 %rds, %tid.x, 4, tile;
    st.shared.u32 [%rds], %r1;
    bar.sync 0;
    setp.gt.s32 %p1, %tid.x, 0;
    @%p1 ld.shared.u32 %r2, [%rds+-4];
    mad.lo.s64 %rdt, %ctaid.x, %ntid.x, %tid.x;
    mad.lo.s64 %rdo, %rdt, 4, out;
    st.global.u32 [%rdo], %r2;
    ret;
}
|}

let test_uniform_safe_phased () =
  let a = A.analyze (parse uniform_safe_src) in
  let safe, racy, unknown = A.counts a in
  Alcotest.(check (triple int int int)) "all four accesses safe" (4, 0, 0)
    (safe, racy, unknown);
  Alcotest.(check bool) "the uniform config load is uniform" true
    (A.klass a 0 = A.Thread_uniform);
  (* The tile store conflicts with the neighbour read on addresses but
     the barrier separates their phases. *)
  Alcotest.(check bool) "tile store is barrier-phased" true
    (A.verdict a 2 = Some (A.Safe A.Barrier_phased));
  Alcotest.(check bool) "neighbour read is barrier-phased" true
    (A.verdict a 5 = Some (A.Safe A.Barrier_phased))

(* Same kernel without the barrier: the store/read pair can no longer
   be proved phased, so both fall back to dynamic checking. *)
let test_missing_barrier_not_safe () =
  let src =
    String.concat ""
      (String.split_on_char '\n' uniform_safe_src
      |> List.filter (fun l -> not (String.trim l = "bar.sync 0;"))
      |> List.map (fun l -> l ^ "\n"))
  in
  let a = A.analyze (parse src) in
  let safe, _racy, unknown = A.counts a in
  Alcotest.(check int) "store and read left for dynamic checking" 2 unknown;
  Alcotest.(check int) "config load and output store still safe" 2 safe

let static_racy_src =
  {|
.visible .entry static_racy (.param .u64 out)
{
    .shared .align 4 .b8 flag[16];
    st.shared.u32 [flag], 1;
    ld.shared.u32 %r1, [flag];
    st.global.u32 [out], %r1;
    ret;
}
|}

let layout ?(warp = 32) ~blocks ~tpb () =
  Vclock.Layout.make ~warp_size:warp ~threads_per_block:tpb ~blocks

let test_static_racy_verdict () =
  let a = A.analyze (parse static_racy_src) in
  Alcotest.(check bool) "store verdict is racy" true
    (A.verdict a 0 = Some A.Racy);
  Alcotest.(check bool) "load verdict is racy" true
    (A.verdict a 1 = Some A.Racy);
  Alcotest.(check int) "one racy pair" 1 (List.length (A.pairs a));
  (* Shared-memory uniform conflicts need two warps in one block:
     intra-warp pairs are lockstep-ordered, so a single-warp block
     cannot materialize the race. *)
  Alcotest.(check bool) "racy for two warps per block" true
    (A.provably_racy a ~layout:(layout ~blocks:2 ~tpb:64 ()));
  Alcotest.(check bool) "not racy for one warp per block" false
    (A.provably_racy a ~layout:(layout ~blocks:4 ~tpb:32 ()));
  match A.report a ~layout:(layout ~blocks:2 ~tpb:64 ()) with
  | None -> Alcotest.fail "expected a static report"
  | Some r ->
      Alcotest.(check bool) "static report carries the race" true
        (Report.has_race r)

(* The static verdict must agree with the dynamic detector end to
   end: the same kernel, executed, reports a race at the same shared
   address. *)
let test_static_racy_dynamic_agreement () =
  let l = layout ~blocks:2 ~tpb:64 () in
  let m = Simt.Machine.create ~layout:l () in
  let kernel = parse static_racy_src in
  let out = Int64.of_int (Simt.Machine.alloc_global m 64) in
  let r =
    Pipeline.run
      ~config:{ Pipeline.default_config with detector = detector_config }
      ~machine:m kernel [| out |]
  in
  Alcotest.(check bool) "dynamic detector agrees" true
    (Report.has_race (Pipeline.report r))

(* ---- soundness over the bug suite -------------------------------- *)

(* For every case (the 66-program suite plus the predictive family),
   the race set with static pruning must be bitwise identical to the
   unpruned one — serial and sharded.  This is the proof obligation
   for dropping logging: no seeded racy access may be classified
   Safe. *)
let test_bugsuite_parity_serial () =
  List.iter
    (fun (c : Bugsuite.Case.t) ->
      let baseline = race_set (serial_report ~static:false c) in
      let pruned = race_set (serial_report ~static:true c) in
      if baseline <> pruned then
        Alcotest.failf "%s: static pruning changed the serial race set"
          c.Bugsuite.Case.name)
    (Bugsuite.Cases.all @ Bugsuite.Cases.predictive)

let test_bugsuite_parity_sharded () =
  List.iter
    (fun (c : Bugsuite.Case.t) ->
      let baseline = race_set (sharded_report ~static:false ~shards:4 c) in
      let pruned = race_set (sharded_report ~static:true ~shards:4 c) in
      if baseline <> pruned then
        Alcotest.failf "%s: static pruning changed the sharded race set"
          c.Bugsuite.Case.name)
    (Bugsuite.Cases.all @ Bugsuite.Cases.predictive)

(* Direct verdict checks against the suite's ground truth: a kernel
   whose accesses are all Safe must be a race-free case, and a kernel
   the analysis proves racy for its case layout must be a racy case. *)
let test_bugsuite_verdicts_consistent () =
  List.iter
    (fun (c : Bugsuite.Case.t) ->
      let a = A.analyze c.Bugsuite.Case.kernel in
      let safe, racy, unknown = A.counts a in
      if racy = 0 && unknown = 0 && safe > 0 then
        Alcotest.(check bool)
          (c.Bugsuite.Case.name ^ ": all-safe kernel must be race-free")
          true
          (c.Bugsuite.Case.verdict = Bugsuite.Case.Race_free);
      if A.provably_racy a ~layout:c.Bugsuite.Case.layout then
        Alcotest.(check bool)
          (c.Bugsuite.Case.name ^ ": provably-racy kernel must be racy")
          true
          (c.Bugsuite.Case.verdict = Bugsuite.Case.Racy))
    (Bugsuite.Cases.all @ Bugsuite.Cases.predictive)

(* ---- the service fast path --------------------------------------- *)

let submit ?(static = true) src =
  { (Service.Protocol.submit_defaults ~kind:Service.Protocol.Check src)
    with Service.Protocol.static }

let test_service_static_verdict () =
  let cache = Service.Cache.create ~capacity:4 () in
  (* The probe is a pure cache peek: a kernel never seen before takes
     the queued path even when provably racy — heavy analysis work
     never runs on the probing (connection) thread. *)
  Alcotest.(check bool) "cold cache: no instant answer" true
    (Service.Exec.static_verdict ~cache ~job:0 (submit static_racy_src)
    = None);
  (* The queued executor short-circuits statically and warms the
     cache... *)
  (match Service.Exec.run ~cache ~job:7 (submit static_racy_src) with
  | Service.Protocol.Result { outcome; job; _ } ->
      Alcotest.(check bool) "run short-circuits statically" true
        outcome.Service.Protocol.static;
      Alcotest.(check int) "run keeps its job id" 7 job
  | _ -> Alcotest.fail "expected a result from run");
  (* ...after which the probe answers without execution. *)
  (match Service.Exec.static_verdict ~cache ~job:3 (submit static_racy_src) with
  | Some (Service.Protocol.Result { outcome; _ }) ->
      Alcotest.(check bool) "verdict is racy" true
        (outcome.Service.Protocol.verdict = Service.Protocol.Racy);
      Alcotest.(check bool) "flagged static" true
        outcome.Service.Protocol.static;
      Alcotest.(check bool) "counted as a cache hit" true
        outcome.Service.Protocol.cache_hit
  | _ -> Alcotest.fail "expected an instant racy result");
  (* ...but not when the client disabled the analysis... *)
  Alcotest.(check bool) "no probe with static off" true
    (Service.Exec.static_verdict ~cache ~job:0
       (submit ~static:false static_racy_src)
    = None);
  (* ...and race-free or unprovable kernels take the queued path even
     once cached. *)
  ignore (Service.Exec.run ~cache ~job:8 (submit vecadd_src));
  Alcotest.(check bool) "no probe for a safe kernel" true
    (Service.Exec.static_verdict ~cache ~job:0 (submit vecadd_src) = None);
  Alcotest.(check bool) "no probe for garbage (queued path reports it)" true
    (Service.Exec.static_verdict ~cache ~job:0 (submit "not ptx") = None)

(* ---- instrumentation wiring -------------------------------------- *)

let test_pass_static_tier () =
  let k = parse vecadd_src in
  let both_off = Instrument.Pass.instrument ~prune:false ~static:false k in
  let static_on = Instrument.Pass.instrument ~prune:false ~static:true k in
  Alcotest.(check int) "no pruning with both tiers off" 0
    (Instrument.Stats.pruned both_off.Instrument.Pass.stats);
  Alcotest.(check int) "static tier drops all three accesses" 3
    static_on.Instrument.Pass.stats.Instrument.Stats.pruned_static;
  Alcotest.(check int) "block tier idle" 0
    static_on.Instrument.Pass.stats.Instrument.Stats.pruned_block;
  (* A statically pruned access keeps its instruction — only its
     logging call disappears, so the instrumented body shrinks. *)
  Alcotest.(check bool) "pruning removes logging instructions" true
    (Array.length static_on.Instrument.Pass.kernel.Ptx.Ast.body
    < Array.length both_off.Instrument.Pass.kernel.Ptx.Ast.body)

let suite =
  [
    Alcotest.test_case "vecadd: every access safe" `Quick test_vecadd_all_safe;
    Alcotest.test_case "branchy vecadd keeps its disjointness proof" `Quick
      test_branch_keeps_disjoint;
    Alcotest.test_case "diamond join falls back to unknown" `Quick
      test_diamond_join_is_top;
    Alcotest.test_case "barrier-phased tile is safe" `Quick
      test_uniform_safe_phased;
    Alcotest.test_case "missing barrier defeats the phase proof" `Quick
      test_missing_barrier_not_safe;
    Alcotest.test_case "uniform shared conflict is provably racy" `Quick
      test_static_racy_verdict;
    Alcotest.test_case "static racy verdict agrees with execution" `Quick
      test_static_racy_dynamic_agreement;
    Alcotest.test_case "bugsuite race-set parity, serial" `Slow
      test_bugsuite_parity_serial;
    Alcotest.test_case "bugsuite race-set parity, 4 shards" `Slow
      test_bugsuite_parity_sharded;
    Alcotest.test_case "verdicts consistent with ground truth" `Quick
      test_bugsuite_verdicts_consistent;
    Alcotest.test_case "service static fast path" `Quick
      test_service_static_verdict;
    Alcotest.test_case "instrument static tier" `Quick test_pass_static_tier;
  ]
