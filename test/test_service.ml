(* The race-checking service: wire protocol, artifact cache, scheduler
   backpressure, daemon lifecycle (crash isolation, timeouts), and
   verdict parity between the daemon and one-shot checking. *)

module P = Service.Protocol
module Case = Bugsuite.Case

let ok_outcome =
  {
    P.verdict = P.Race_free;
    races = 0;
    errors = [];
    cache_hit = false;
    predicted = 0;
    confirmed = 0;
    degraded = false;
    static = false;
    repaired = false;
    fix = "";
    repair_tried = 0;
    detect_ms = 0.0;
  }

let tmp_socket name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "barracuda-test-%d-%s.sock" (Unix.getpid ()) name)

let with_server ?(workers = 2) ?(queue_capacity = 64) ?max_steps name f =
  let socket_path = tmp_socket name in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let config =
    {
      Service.Server.default_config with
      socket_path;
      workers;
      queue_capacity;
      max_steps =
        (match max_steps with
        | Some n -> n
        | None -> Service.Server.default_config.Service.Server.max_steps);
    }
  in
  let t = Service.Server.start ~config () in
  Fun.protect
    ~finally:(fun () -> Service.Server.stop t)
    (fun () ->
      Alcotest.(check bool)
        "daemon ready" true
        (Service.Client.wait_ready ~socket:socket_path ());
      f socket_path t)

(* ---- protocol ---------------------------------------------------- *)

let check_request_roundtrip req =
  match P.decode_request (P.encode_request req) with
  | Ok req' ->
      Alcotest.(check bool) (P.encode_request req) true (req = req')
  | Result.Error e -> Alcotest.failf "decode_request: %s" e

let check_response_roundtrip resp =
  match P.decode_response (P.encode_response resp) with
  | Ok resp' ->
      Alcotest.(check bool) (P.encode_response resp) true (resp = resp')
  | Result.Error e -> Alcotest.failf "decode_response: %s" e

let test_protocol_roundtrip () =
  List.iter check_request_roundtrip
    [
      P.Ping;
      P.Status;
      P.Metrics;
      P.Shutdown;
      P.Submit (P.submit_defaults ~kind:P.Check ".visible .entry k () { ret; }");
      P.Submit
        {
          P.kind = P.Predict;
          payload = "line one\nline \"two\"\ttab\\slash";
          layout = Some (4, 128, 32);
          args = [ "alloc:256"; "int:7"; "42" ];
          prune = false;
          static = false;
          tenant = Some "acme";
        };
      P.Stream_open
        (P.submit_defaults ~kind:P.Check ".visible .entry k () { ret; }");
      P.Stream_append { sid = 7; chunk = "\x00\xffbinary\ngoo\x01" };
      P.Stream_flush { sid = 7 };
      P.Stream_close { sid = 7 };
    ];
  List.iter check_response_roundtrip
    [
      P.Pong;
      P.Stopping;
      P.Error "unparsable request";
      P.Rejected { reason = "queue_full"; retry_after_ms = 50 };
      P.Failed { job = 9; code = "parse_error"; message = "PTX line 3: no" };
      P.Result
        {
          job = 4;
          outcome =
            {
              P.verdict = P.Racy;
              races = 3;
              errors = [ "race on g[0]"; "race on g[1]" ];
              cache_hit = true;
              predicted = 2;
              confirmed = 1;
              degraded = true;
              static = true;
              repaired = false;
              fix = "";
              repair_tried = 0;
              detect_ms = 1.75;
            };
          queue_ms = 0.25;
          run_ms = 41.5;
        };
      P.Status_reply
        {
          P.uptime_ms = 1234.5;
          workers = 4;
          busy = 1;
          queue_depth = 2;
          queue_capacity = 64;
          submitted = 10;
          completed = 7;
          failed = 1;
          rejected = 2;
          racy = 3;
          race_free = 4;
          quarantined = 1;
          workers_restarted = 2;
          cache_entries = 5;
          cache_hits = 6;
          cache_misses = 5;
          cache_evictions = 0;
          session_seats = 2;
          open_sessions = 1;
          sessions_opened = 9;
          integrity_corrupt = 3;
          integrity_gaps = 2;
          integrity_stale = 1;
          integrity_desync = 4;
          tenants =
            [
              {
                P.t_name = "acme";
                t_queued = 1;
                t_inflight = 2;
                t_submitted = 9;
                t_completed = 6;
                t_rejected = 1;
                t_p50_ms = 2.5;
                t_p99_ms = 50.0;
              };
            ];
          campaign =
            Some
              {
                P.ca_trials = 12;
                ca_total = 800;
                ca_batches = 2;
                ca_silent_wrong = 0;
                ca_paused = true;
              };
        };
      P.Stream_opened { sid = 7 };
      P.Stream_ack { sid = 7; records = 1234 };
      P.Stream_verdict
        {
          sid = 7;
          final = false;
          records = 1234;
          races = 2;
          verdict = P.Racy;
          degraded = true;
          corrupt = 1;
          gaps = 2;
          stale = 0;
          desync = 0;
        };
      P.Stream_verdict
        {
          sid = 8;
          final = true;
          records = 0;
          races = 0;
          verdict = P.Race_free;
          degraded = false;
          corrupt = 0;
          gaps = 0;
          stale = 0;
          desync = 0;
        };
      P.Metrics_reply "# TYPE a counter\na 1\n";
    ];
  (* Malformed input degrades to [Error], never an exception. *)
  (match P.decode_request "{\"cmd\":\"no_such\"}" with
  | Result.Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown cmd should not decode");
  match P.decode_request "not json at all" with
  | Result.Error _ -> ()
  | Ok _ -> Alcotest.fail "junk should not decode"

(* ---- framing ----------------------------------------------------- *)

let test_oversized_frame () =
  (* Unit level: the cap stops the read mid-line and is distinguishable
     from a clean EOF. *)
  let file = Filename.temp_file "barracuda-frame" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin file in
      let chunk = String.make 65536 'a' in
      for _ = 1 to (P.max_frame_bytes / 65536) + 1 do
        output_string oc chunk
      done;
      output_string oc "\n{\"cmd\":\"ping\"}\n";
      close_out oc;
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match P.read_frame ic with
          | P.Oversized -> ()
          | P.Frame _ -> Alcotest.fail "oversized frame was accepted"
          | P.Eof -> Alcotest.fail "oversized frame read as EOF");
      let ic = open_in_bin "/dev/null" in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match P.read_frame ic with
          | P.Eof -> ()
          | _ -> Alcotest.fail "empty input should read as EOF"))

let test_oversized_frame_daemon () =
  with_server "oversize" (fun socket _t ->
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          let chunk = Bytes.make 65536 'a' in
          let remaining = ref (P.max_frame_bytes + 2) in
          (try
             while !remaining > 0 do
               let n = min !remaining (Bytes.length chunk) in
               remaining := !remaining - Unix.write fd chunk 0 n
             done
           with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
          (match P.read_frame (Unix.in_channel_of_descr fd) with
          | P.Frame line -> (
              match P.decode_response line with
              | Ok (P.Error _) -> ()
              | Ok r ->
                  Alcotest.failf "expected protocol error, got %s"
                    (P.encode_response r)
              | Result.Error e -> Alcotest.failf "undecodable reply: %s" e)
          | P.Eof | P.Oversized ->
              Alcotest.fail "daemon closed without a protocol error reply"));
      (* The daemon survives the abuse and keeps serving. *)
      Alcotest.(check bool)
        "daemon still responsive" true
        (Service.Client.ping ~socket))

(* ---- artifact cache ---------------------------------------------- *)

let tiny_entry () =
  let b = Ptx.Builder.create ~params:[ "p0" ] "tiny" in
  Ptx.Builder.st b (Ptx.Builder.sym "p0") (Ptx.Builder.imm 1);
  let kernel = Ptx.Builder.finish b in
  {
    Service.Cache.kernel;
    cfg = Cfg.Graph.of_kernel kernel;
    inst = Instrument.Pass.instrument ~prune:true kernel;
    analysis = Static.Analysis.analyze kernel;
  }

let test_cache_accounting () =
  let cache = Service.Cache.create ~capacity:2 () in
  let builds = ref 0 in
  let build () =
    incr builds;
    tiny_entry ()
  in
  let _, hit = Service.Cache.find_or_build cache "a" ~build in
  Alcotest.(check bool) "first lookup misses" false hit;
  let _, hit = Service.Cache.find_or_build cache "a" ~build in
  Alcotest.(check bool) "second lookup hits" true hit;
  Alcotest.(check int) "hit does not rebuild" 1 !builds;
  ignore (Service.Cache.find_or_build cache "b" ~build);
  ignore (Service.Cache.find_or_build cache "c" ~build);
  let s = Service.Cache.stats cache in
  Alcotest.(check int) "bounded by capacity" 2 s.Service.Cache.entries;
  Alcotest.(check int) "evicted one entry" 1 s.Service.Cache.evictions;
  Alcotest.(check int) "hits counted" 1 s.Service.Cache.hits;
  Alcotest.(check int) "misses counted" 3 s.Service.Cache.misses;
  (* "a" was least recently used and must be the evictee: rebuilding it
     misses, while "c" still hits. *)
  let _, hit = Service.Cache.find_or_build cache "c" ~build in
  Alcotest.(check bool) "recent key survives" true hit;
  let _, hit = Service.Cache.find_or_build cache "a" ~build in
  Alcotest.(check bool) "LRU key was evicted" false hit;
  (* Failed builds propagate and are not negatively cached. *)
  (match
     Service.Cache.find_or_build cache "bad" ~build:(fun () ->
         failwith "boom")
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "failing build should raise");
  let _, hit = Service.Cache.find_or_build cache "bad" ~build in
  Alcotest.(check bool) "failure was not cached" false hit;
  let key ~prune ~static s = Service.Cache.key ~prune ~static s in
  Alcotest.(check bool) "different sources, different keys" true
    (key ~prune:true ~static:true "x" <> key ~prune:true ~static:true "y");
  Alcotest.(check bool) "prune flag changes the key" true
    (key ~prune:true ~static:true "x" <> key ~prune:false ~static:true "x");
  Alcotest.(check bool) "static flag changes the key" true
    (key ~prune:true ~static:true "x" <> key ~prune:true ~static:false "x")

(* ---- scheduler backpressure -------------------------------------- *)

(* Deterministic saturation: a controllable exec blocks its worker
   until released, so with one worker and a one-slot queue the third
   submission must be rejected synchronously. *)
let test_backpressure () =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let running = ref 0 in
  let release = ref false in
  let exec ~job (_ : P.submit) =
    Mutex.lock m;
    incr running;
    Condition.broadcast cv;
    while not !release do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    P.Result { job; outcome = ok_outcome; queue_ms = 0.0; run_ms = 0.0 }
  in
  let sched =
    Service.Scheduler.create
      ~config:
        {
          Service.Scheduler.default_config with
          Service.Scheduler.workers = 1;
          queue_capacity = 1;
          retry_after_ms = 7;
        }
      ~exec ()
  in
  let replies = ref [] in
  let reply r =
    Mutex.lock m;
    replies := r :: !replies;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  let sub = P.submit_defaults ~kind:P.Check "irrelevant" in
  Service.Scheduler.submit sched sub ~reply;
  (* Wait until the worker holds job 1, so job 2 occupies the only
     queue slot and job 3 finds the queue full. *)
  Mutex.lock m;
  while !running < 1 do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  Service.Scheduler.submit sched sub ~reply;
  let rejected = ref None in
  Service.Scheduler.submit sched sub ~reply:(fun r -> rejected := Some r);
  (match !rejected with
  | Some (P.Rejected { reason; retry_after_ms }) ->
      Alcotest.(check string) "reject reason" "queue_full" reason;
      Alcotest.(check int) "retry hint" 7 retry_after_ms
  | _ -> Alcotest.fail "third submission should be rejected synchronously");
  Alcotest.(check int) "queue holds the waiting job" 1
    (Service.Scheduler.depth sched);
  Mutex.lock m;
  release := true;
  Condition.broadcast cv;
  while List.length !replies < 2 do
    Condition.wait cv m
  done;
  Mutex.unlock m;
  Service.Scheduler.stop sched;
  List.iter
    (function
      | P.Result _ -> ()
      | r -> Alcotest.failf "accepted job got %s" (P.encode_response r))
    !replies;
  let c = Service.Scheduler.counts sched in
  Alcotest.(check int) "completed" 2 c.Service.Scheduler.completed;
  Alcotest.(check int) "rejected" 1 c.Service.Scheduler.rejected;
  Alcotest.(check int) "failed" 0 c.Service.Scheduler.failed

(* ---- daemon lifecycle -------------------------------------------- *)

let trivial_ptx = ".visible .entry ok (.param .u64 p0)\n{\n    ret;\n}\n"

(* Parses fine, then blows up in CFG construction (dangling branch
   target) — an exception from the middle of the pipeline, which must
   fail only its own job. *)
let dangling_ptx =
  ".visible .entry crash (.param .u64 p0)\n{\n    bra NOWHERE;\n    ret;\n}\n"

let submit_verdict ?(retries = 0) ~socket sub =
  match Service.Client.submit ~retries ~socket sub with
  | Ok (P.Result { outcome; _ }) -> Ok outcome
  | Ok (P.Failed { code; message; _ }) ->
      Result.Error (Printf.sprintf "%s: %s" code message)
  | Ok r -> Result.Error (P.encode_response r)
  | Result.Error e -> Result.Error e

let test_ping_and_status () =
  with_server "status" (fun socket t ->
      Alcotest.(check bool) "ping" true (Service.Client.ping ~socket);
      let s =
        match Service.Client.status ~socket with
        | Ok s -> s
        | Result.Error e -> Alcotest.failf "status: %s" e
      in
      Alcotest.(check int) "workers" 2 s.P.workers;
      Alcotest.(check int) "queue capacity" 64 s.P.queue_capacity;
      Alcotest.(check int) "nothing submitted yet" 0 s.P.submitted;
      Alcotest.(check bool) "uptime advances" true (s.P.uptime_ms >= 0.0);
      (* The server-side view agrees with the wire view. *)
      let local = Service.Server.status t in
      Alcotest.(check int) "local status agrees" local.P.workers s.P.workers;
      match Service.Client.metrics ~socket with
      | Ok text ->
          let mentions_service =
            List.exists
              (String.starts_with ~prefix:"barracuda_service_")
              (String.split_on_char '\n' text)
          in
          Alcotest.(check bool)
            "prometheus text mentions service counters" true mentions_service
      | Result.Error e -> Alcotest.failf "metrics: %s" e)

let test_crash_isolation () =
  (* Confirm the crash kernel really parses: the failure under test is
     a mid-pipeline exception, not a parse error. *)
  ignore (Ptx.Parser.kernel_of_string dangling_ptx);
  with_server "crash" (fun socket _t ->
      (match
         Service.Client.submit ~socket
           (P.submit_defaults ~kind:P.Check dangling_ptx)
       with
      | Ok (P.Failed { code; _ }) ->
          Alcotest.(check string) "mid-pipeline crash code" "exec_error" code
      | Ok r -> Alcotest.failf "expected Failed, got %s" (P.encode_response r)
      | Result.Error e -> Alcotest.failf "transport: %s" e);
      (* The daemon survived: it still answers and still checks. *)
      Alcotest.(check bool) "daemon alive after crash" true
        (Service.Client.ping ~socket);
      (match
         submit_verdict ~socket (P.submit_defaults ~kind:P.Check trivial_ptx)
       with
      | Ok o -> Alcotest.(check bool) "still checks" true (o.P.verdict = P.Race_free)
      | Result.Error e -> Alcotest.failf "submit after crash: %s" e);
      match Service.Client.status ~socket with
      | Ok s ->
          Alcotest.(check int) "one failed job" 1 s.P.failed;
          Alcotest.(check int) "one completed job" 1 s.P.completed
      | Result.Error e -> Alcotest.failf "status: %s" e)

let test_job_timeout () =
  with_server ~max_steps:1 "timeout" (fun socket _t ->
      (match
         Service.Client.submit ~socket
           (P.submit_defaults ~kind:P.Check trivial_ptx)
       with
      | Ok (P.Failed { code; _ }) ->
          Alcotest.(check string) "budget exhaustion code" "timeout" code
      | Ok r -> Alcotest.failf "expected timeout, got %s" (P.encode_response r)
      | Result.Error e -> Alcotest.failf "transport: %s" e);
      Alcotest.(check bool) "daemon alive after timeout" true
        (Service.Client.ping ~socket))

let test_bad_submissions () =
  with_server "badsub" (fun socket _t ->
      (match
         Service.Client.submit ~socket
           (P.submit_defaults ~kind:P.Check "this is not ptx")
       with
      | Ok (P.Failed { code; _ }) ->
          Alcotest.(check string) "parse failure code" "parse_error" code
      | Ok r -> Alcotest.failf "expected Failed, got %s" (P.encode_response r)
      | Result.Error e -> Alcotest.failf "transport: %s" e);
      (match
         Service.Client.submit ~socket
           {
             (P.submit_defaults ~kind:P.Check trivial_ptx) with
             P.args = [ "alloc:nonsense" ];
           }
       with
      | Ok (P.Failed { code; _ }) ->
          Alcotest.(check string) "bad argument code" "bad_request" code
      | Ok r -> Alcotest.failf "expected Failed, got %s" (P.encode_response r)
      | Result.Error e -> Alcotest.failf "transport: %s" e);
      Alcotest.(check bool) "daemon alive" true (Service.Client.ping ~socket))

(* ---- verdict parity with one-shot checking ----------------------- *)

let source_of_kernel k = Format.asprintf "%a" Ptx.Printer.pp_kernel k

let arg_specs (c : Case.t) =
  List.map (fun _ -> "alloc:256") c.Case.kernel.Ptx.Ast.params

type verdict_or_timeout = V of P.verdict | Timeout

(* One-shot reference: the same printed source through the same
   session-core path the service's serial jobs use. *)
let oneshot_verdict (c : Case.t) source =
  let kernel = Ptx.Parser.kernel_of_string source in
  let layout = c.Case.layout in
  let machine = Simt.Machine.create ~layout () in
  let args = Service.Exec.resolve_args machine kernel (arg_specs c) in
  let inst = Instrument.Pass.instrument ~prune:true ~static:true kernel in
  let result =
    Gpu_runtime.Session.run_stream
      ~max_steps:Service.Exec.default_config.Service.Exec.max_steps ~inst
      ~machine kernel args
  in
  match
    result.Gpu_runtime.Session.sr_machine_result.Simt.Machine.status
  with
  | Simt.Machine.Max_steps _ | Simt.Machine.Deadline _ -> Timeout
  | Simt.Machine.Completed ->
      let report = result.Gpu_runtime.Session.sr_report in
      V (if Barracuda.Report.has_race report then P.Racy else P.Race_free)

let test_bugsuite_parity () =
  (* The counter assertion at the end needs live telemetry (the CLI's
     [serve] turns it on; tests run with it off by default). *)
  let was_enabled = Telemetry.Registry.enabled () in
  Telemetry.Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.Registry.set_enabled was_enabled)
  @@ fun () ->
  with_server ~workers:2 "parity" (fun socket _t ->
      let cases = Bugsuite.Cases.all in
      List.iter
        (fun (c : Case.t) ->
          let source = source_of_kernel c.Case.kernel in
          let layout = c.Case.layout in
          let sub =
            {
              (P.submit_defaults ~kind:P.Check source) with
              P.layout =
                Some
                  ( layout.Vclock.Layout.blocks,
                    layout.Vclock.Layout.threads_per_block,
                    layout.Vclock.Layout.warp_size );
              args = arg_specs c;
            }
          in
          let via_service =
            match Service.Client.submit ~retries:10 ~socket sub with
            | Ok (P.Result { outcome; _ }) -> V outcome.P.verdict
            | Ok (P.Failed { code = "timeout"; _ }) -> Timeout
            | Ok r ->
                Alcotest.failf "case %s: unexpected reply %s" c.Case.name
                  (P.encode_response r)
            | Result.Error e ->
                Alcotest.failf "case %s: transport: %s" c.Case.name e
          in
          if via_service <> oneshot_verdict c source then
            Alcotest.failf "case %s: service and one-shot verdicts differ"
              c.Case.name)
        cases;
      (* Resubmitting a kernel already checked must hit the artifact
         cache, and the hit must show up in the service counters. *)
      let c = List.hd cases in
      let source = source_of_kernel c.Case.kernel in
      let layout = c.Case.layout in
      let sub =
        {
          (P.submit_defaults ~kind:P.Check source) with
          P.layout =
            Some
              ( layout.Vclock.Layout.blocks,
                layout.Vclock.Layout.threads_per_block,
                layout.Vclock.Layout.warp_size );
          args = arg_specs c;
        }
      in
      (match Service.Client.submit ~retries:10 ~socket sub with
      | Ok (P.Result { outcome; _ }) ->
          Alcotest.(check bool) "resubmission hits the cache" true
            outcome.P.cache_hit
      | Ok r -> Alcotest.failf "resubmit: unexpected reply %s" (P.encode_response r)
      | Result.Error e -> Alcotest.failf "resubmit: transport: %s" e);
      (match Service.Client.status ~socket with
      | Ok s ->
          Alcotest.(check bool) "status counts the hit" true (s.P.cache_hits >= 1);
          Alcotest.(check int) "every submission accounted" (List.length cases + 1)
            s.P.submitted
      | Result.Error e -> Alcotest.failf "status: %s" e);
      match Service.Client.metrics ~socket with
      | Ok text ->
          let hit_line =
            String.split_on_char '\n' text
            |> List.find_opt (fun l ->
                   String.length l > 0
                   && l.[0] <> '#'
                   && String.starts_with ~prefix:"barracuda_service_cache_hits"
                        l)
          in
          (match hit_line with
          | Some line ->
              let value =
                match String.rindex_opt line ' ' with
                | Some i ->
                    float_of_string_opt
                      (String.sub line (i + 1) (String.length line - i - 1))
                | None -> None
              in
              Alcotest.(check bool)
                "barracuda_service_cache_hits counter advanced" true
                (match value with Some v -> v >= 1.0 | None -> false)
          | None ->
              Alcotest.fail "barracuda_service_cache_hits missing from metrics")
      | Result.Error e -> Alcotest.failf "metrics: %s" e)

(* ---- predictive jobs --------------------------------------------- *)

let test_predict_over_trace () =
  let c = List.hd Bugsuite.Cases.predictive in
  let layout = c.Case.layout in
  let m = Simt.Machine.create ~layout () in
  let args = c.Case.setup m in
  let ops, _ = Gtrace.Infer.run ~layout m c.Case.kernel args in
  let payload = Gtrace.Serialize.to_string ~layout ops in
  let local = Predict.Analysis.run ~layout ops in
  with_server "predict" (fun socket _t ->
      match
        Service.Client.submit ~socket
          (P.submit_defaults ~kind:P.Predict payload)
      with
      | Ok (P.Result { outcome; _ }) ->
          Alcotest.(check bool) "verdict matches local analysis" true
            (outcome.P.verdict = P.Racy
            = Predict.Analysis.has_race local);
          Alcotest.(check bool)
            "predictive case is recovered from its trace" true
            (outcome.P.verdict = P.Racy);
          Alcotest.(check int) "prediction count matches"
            (Predict.Analysis.predicted_count local)
            outcome.P.predicted
      | Ok r -> Alcotest.failf "unexpected reply %s" (P.encode_response r)
      | Result.Error e -> Alcotest.failf "transport: %s" e)

(* ---- streaming sessions ------------------------------------------ *)

(* Record a case's wire stream locally through the session core; the
   recording is the exact batch feed, so daemon-side replay parity is
   chunking + transport only. *)
let record_case (c : Case.t) =
  let layout = c.Case.layout in
  let machine = Simt.Machine.create ~layout () in
  let args = c.Case.setup machine in
  let buf = Buffer.create 4096 in
  let r =
    Gpu_runtime.Session.run_stream ~capture:buf ~machine c.Case.kernel args
  in
  ( Barracuda.Report.has_race r.Gpu_runtime.Session.sr_report,
    r.Gpu_runtime.Session.sr_records,
    Buffer.contents buf )

let stream_sub (c : Case.t) =
  let layout = c.Case.layout in
  {
    (P.submit_defaults ~kind:P.Check (source_of_kernel c.Case.kernel)) with
    P.layout =
      Some
        ( layout.Vclock.Layout.blocks,
          layout.Vclock.Layout.threads_per_block,
          layout.Vclock.Layout.warp_size );
  }

let ship_chunked s ~chunk bytes =
  let total = String.length bytes in
  let pos = ref 0 in
  while !pos < total do
    let len = min chunk (total - !pos) in
    (match Service.Client.stream_append s (String.sub bytes !pos len) with
    | Ok _ -> ()
    | Result.Error e -> Alcotest.failf "append: %s" e);
    pos := !pos + len
  done

let test_streaming_session () =
  with_server "stream" (fun socket _t ->
      List.iter
        (fun (c : Case.t) ->
          let racy, records, bytes = record_case c in
          match Service.Client.stream_open ~socket (stream_sub c) with
          | Result.Error e -> Alcotest.failf "open: %s" e
          | Ok s ->
              (* split mid-record: 777 is coprime to the cell size *)
              let half = String.length bytes / 2 in
              ship_chunked s ~chunk:777 (String.sub bytes 0 half);
              (match Service.Client.stream_flush s with
              | Ok v ->
                  Alcotest.(check bool)
                    (c.Case.name ^ ": checkpoint is a prefix verdict")
                    true
                    (v.Service.Client.v_records <= records
                    && not v.Service.Client.v_final)
              | Result.Error e -> Alcotest.failf "flush: %s" e);
              ship_chunked s ~chunk:777
                (String.sub bytes half (String.length bytes - half));
              (match Service.Client.stream_close s with
              | Ok v ->
                  Alcotest.(check bool) (c.Case.name ^ ": final") true
                    v.Service.Client.v_final;
                  Alcotest.(check int) (c.Case.name ^ ": all records landed")
                    records v.Service.Client.v_records;
                  Alcotest.(check bool)
                    (c.Case.name ^ ": verdict matches the local batch run")
                    racy
                    (v.Service.Client.v_verdict = P.Racy);
                  Alcotest.(check bool) (c.Case.name ^ ": clean transport")
                    false v.Service.Client.v_degraded
              | Result.Error e -> Alcotest.failf "close: %s" e))
        [ List.hd Bugsuite.Cases.all;
          List.find (fun (c : Case.t) -> c.Case.verdict = Case.Race_free)
            Bugsuite.Cases.all ])

let test_streaming_seat_exhaustion () =
  with_server "seats" (fun socket _t ->
      let c = List.hd Bugsuite.Cases.all in
      let sub = stream_sub c in
      let open_ok () =
        match Service.Client.stream_open ~socket sub with
        | Ok s -> s
        | Result.Error e -> Alcotest.failf "open: %s" e
      in
      (* default config: 2 seats *)
      let a = open_ok () in
      let b = open_ok () in
      (match Service.Client.stream_open ~socket sub with
      | Ok _ -> Alcotest.fail "third session must be rejected"
      | Result.Error e ->
          Alcotest.(check bool) "backpressure names the reason" true
            (String.length e >= 8
            && String.sub e 0 8 = "rejected"));
      (* releasing a seat makes streaming available again *)
      (match Service.Client.stream_close a with
      | Ok v ->
          Alcotest.(check bool) "empty session closes race-free" true
            (v.Service.Client.v_verdict = P.Race_free)
      | Result.Error e -> Alcotest.failf "close: %s" e);
      let c3 = open_ok () in
      Service.Client.stream_abort c3;
      Service.Client.stream_abort b)

let test_streaming_integrity_in_status () =
  (* a corrupted chunk must degrade the session verdict AND surface in
     the daemon's status integrity counters (satellite: previously
     Prometheus-only) *)
  let was_enabled = Telemetry.Registry.enabled () in
  Telemetry.Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.Registry.set_enabled was_enabled)
  @@ fun () ->
  with_server "integrity" (fun socket _t ->
      let c = List.hd Bugsuite.Cases.all in
      let _, records, bytes = record_case c in
      let b = Bytes.of_string bytes in
      (* flip a checksum-covered header byte of the first record *)
      Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0xff));
      match Service.Client.stream_open ~socket (stream_sub c) with
      | Result.Error e -> Alcotest.failf "open: %s" e
      | Ok s -> (
          ship_chunked s ~chunk:4096 (Bytes.to_string b);
          (match Service.Client.stream_close s with
          | Ok v ->
              Alcotest.(check bool) "degraded" true v.Service.Client.v_degraded;
              Alcotest.(check int) "one corrupt record" 1
                v.Service.Client.v_corrupt;
              Alcotest.(check int) "the rest landed" (records - 1)
                v.Service.Client.v_records
          | Result.Error e -> Alcotest.failf "close: %s" e);
          match Service.Client.status ~socket with
          | Ok st ->
              Alcotest.(check bool) "status surfaces the desync counts" true
                (st.P.integrity_corrupt >= 1)
          | Result.Error e -> Alcotest.failf "status: %s" e))

(* ---- multi-tenant scheduling ------------------------------------- *)

(* A gated exec over a bare scheduler: jobs block while [hold] is set,
   so tests control exactly which jobs are in flight. *)
let gated_scheduler ?(workers = 1) ?(queue_capacity = 64) ?(tenant_quotas = [])
    () =
  let m = Mutex.create () in
  let cv = Condition.create () in
  let running = ref 0 in
  let hold = ref true in
  let order = ref [] in
  let exec ~job (sub : P.submit) =
    Mutex.lock m;
    incr running;
    order := sub.P.payload :: !order;
    Condition.broadcast cv;
    while !hold do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    P.Result { job; outcome = ok_outcome; queue_ms = 0.0; run_ms = 0.0 }
  in
  let sched =
    Service.Scheduler.create
      ~config:
        {
          Service.Scheduler.default_config with
          Service.Scheduler.workers;
          queue_capacity;
          tenant_quotas;
        }
      ~exec ()
  in
  let wait_running n =
    Mutex.lock m;
    while !running < n do
      Condition.wait cv m
    done;
    Mutex.unlock m
  in
  let release () =
    Mutex.lock m;
    hold := false;
    Condition.broadcast cv;
    Mutex.unlock m
  in
  (sched, wait_running, release, order, m)

let tenant_submit sched ~tenant ~payload ~reply =
  Service.Scheduler.submit sched
    {
      (P.submit_defaults ~kind:P.Check payload) with
      P.tenant = Some tenant;
    }
    ~reply

let find_tenant name (tenants : P.tenant_status list) =
  match List.find_opt (fun t -> t.P.t_name = name) tenants with
  | Some t -> t
  | None -> Alcotest.failf "tenant %s missing from status" name

(* Fairness under load: one worker, two tenants with deep backlogs —
   DRR must interleave them ~1:1 regardless of enqueue order, so
   neither tenant's throughput falls below its fair share while the
   other has work queued. *)
let test_tenant_fairness () =
  let sched, wait_running, release, order, m = gated_scheduler () in
  let done_count = ref 0 in
  let reply _ =
    Mutex.lock m;
    incr done_count;
    Mutex.unlock m
  in
  (* Park the worker on a warm-up job so both backlogs queue up
     behind it before any dequeue decision is made. *)
  tenant_submit sched ~tenant:"warm" ~payload:"warm" ~reply;
  wait_running 1;
  for i = 1 to 6 do
    tenant_submit sched ~tenant:"alpha"
      ~payload:(Printf.sprintf "alpha%d" i) ~reply
  done;
  for i = 1 to 6 do
    tenant_submit sched ~tenant:"beta"
      ~payload:(Printf.sprintf "beta%d" i) ~reply
  done;
  release ();
  Service.Scheduler.stop sched;
  (* [order] records pickup order, most recent first. *)
  let pickups = List.rev !order in
  (match pickups with
  | "warm" :: rest ->
      (* In every prefix of the drain, neither tenant may lag the
         other by more than one job: that is exact round-robin, the
         fair share for equal quanta. *)
      let rec scan a b = function
        | [] -> ()
        | p :: rest ->
            let a, b =
              if String.length p >= 5 && String.sub p 0 5 = "alpha" then
                (a + 1, b)
              else (a, b + 1)
            in
            Alcotest.(check bool)
              (Printf.sprintf "fair prefix (%d alpha vs %d beta)" a b)
              true
              (abs (a - b) <= 1);
            scan a b rest
      in
      scan 0 0 rest
  | _ -> Alcotest.fail "warm-up job must run first");
  Alcotest.(check int) "everything completed" 13 !done_count;
  let tenants = Service.Scheduler.tenant_status sched in
  let a = find_tenant "alpha" tenants and b = find_tenant "beta" tenants in
  Alcotest.(check int) "alpha all done" 6 a.P.t_completed;
  Alcotest.(check int) "beta all done" 6 b.P.t_completed

(* Token-bucket admission: burst 2 with a near-zero refill rate admits
   exactly two jobs and rejects the third with reason "tenant_quota"
   and a positive retry hint — while an unquota'd tenant sails
   through. *)
let test_tenant_quota_reject () =
  let quotas =
    [ ("metered", { Service.Scheduler.rate = 0.0001; burst = 2; seats = 0 }) ]
  in
  let sched, wait_running, release, _order, _m =
    gated_scheduler ~workers:1 ~tenant_quotas:quotas ()
  in
  let replies = ref [] in
  let reply r = replies := r :: !replies in
  tenant_submit sched ~tenant:"metered" ~payload:"m1" ~reply;
  wait_running 1;
  tenant_submit sched ~tenant:"metered" ~payload:"m2" ~reply;
  let rejected = ref None in
  tenant_submit sched ~tenant:"metered" ~payload:"m3"
    ~reply:(fun r -> rejected := Some r);
  (match !rejected with
  | Some (P.Rejected { reason; retry_after_ms }) ->
      Alcotest.(check string) "quota reject reason" "tenant_quota" reason;
      Alcotest.(check bool) "positive retry hint" true (retry_after_ms > 0)
  | _ -> Alcotest.fail "third metered job must be rejected synchronously");
  (* Another tenant is untouched by the dry bucket. *)
  let other_rejected = ref false in
  tenant_submit sched ~tenant:"free" ~payload:"f1"
    ~reply:(fun r ->
      match r with P.Rejected _ -> other_rejected := true | _ -> ());
  release ();
  Service.Scheduler.stop sched;
  Alcotest.(check bool) "unquota'd tenant admitted" false !other_rejected;
  let tenants = Service.Scheduler.tenant_status sched in
  let metered = find_tenant "metered" tenants in
  Alcotest.(check int) "metered submitted" 2 metered.P.t_submitted;
  Alcotest.(check int) "metered completed" 2 metered.P.t_completed;
  Alcotest.(check int) "metered rejected" 1 metered.P.t_rejected;
  Alcotest.(check int) "global rejected count" 1
    (Service.Scheduler.counts sched).Service.Scheduler.rejected

(* Seat caps: a tenant capped to 1 concurrent job leaves the second
   worker free for other tenants instead of occupying it. *)
let test_tenant_seat_cap () =
  let quotas =
    [ ("capped", { Service.Scheduler.rate = 0.0; burst = 0; seats = 1 }) ]
  in
  let sched, wait_running, release, _order, _m =
    gated_scheduler ~workers:2 ~tenant_quotas:quotas ()
  in
  let done_all = ref 0 in
  let m2 = Mutex.create () in
  let reply _ =
    Mutex.lock m2;
    incr done_all;
    Mutex.unlock m2
  in
  tenant_submit sched ~tenant:"capped" ~payload:"c1" ~reply;
  tenant_submit sched ~tenant:"capped" ~payload:"c2" ~reply;
  wait_running 1;
  (* Give the second worker every chance to (wrongly) take c2. *)
  Thread.delay 0.1;
  Alcotest.(check int) "only one capped job in flight" 1
    (Service.Scheduler.busy sched);
  let tenants = Service.Scheduler.tenant_status sched in
  let capped = find_tenant "capped" tenants in
  Alcotest.(check int) "capped inflight" 1 capped.P.t_inflight;
  Alcotest.(check int) "capped queued" 1 capped.P.t_queued;
  (* The idle worker still serves other tenants. *)
  tenant_submit sched ~tenant:"free" ~payload:"f1" ~reply;
  wait_running 2;
  Alcotest.(check int) "free tenant runs alongside" 2
    (Service.Scheduler.busy sched);
  release ();
  Service.Scheduler.stop sched;
  Alcotest.(check int) "all three completed" 3 !done_all

(* Gauge hygiene under admission control: queue-depth, busy-worker and
   the per-tenant gauges never go negative and are all zeroed by
   [stop], across quota rejects and completed work alike. *)
let test_tenant_gauge_hygiene () =
  let was_enabled = Telemetry.Registry.enabled () in
  Telemetry.Registry.set_enabled true;
  Fun.protect ~finally:(fun () -> Telemetry.Registry.set_enabled was_enabled)
  @@ fun () ->
  let quotas =
    [ ("metered", { Service.Scheduler.rate = 0.0001; burst = 1; seats = 1 }) ]
  in
  let sched, wait_running, release, _order, _m =
    gated_scheduler ~workers:2 ~tenant_quotas:quotas ()
  in
  let reply _ = () in
  tenant_submit sched ~tenant:"metered" ~payload:"m1" ~reply;
  tenant_submit sched ~tenant:"metered" ~payload:"m2" ~reply;
  (* rejected: bucket dry *)
  tenant_submit sched ~tenant:"free" ~payload:"f1" ~reply;
  tenant_submit sched ~tenant:"free" ~payload:"f2" ~reply;
  wait_running 2;
  let reg = Telemetry.Registry.default in
  let g name tenant =
    Telemetry.Registry.find_gauge ~labels:[ ("tenant", tenant) ] reg name
  in
  Alcotest.(check bool) "queued gauges non-negative mid-flight" true
    (g "barracuda_service_tenant_queued" "metered" >= 0
    && g "barracuda_service_tenant_queued" "free" >= 0);
  Alcotest.(check bool) "inflight gauges non-negative mid-flight" true
    (g "barracuda_service_tenant_inflight" "metered" >= 0
    && g "barracuda_service_tenant_inflight" "free" >= 0);
  release ();
  Service.Scheduler.stop sched;
  List.iter
    (fun tenant ->
      Alcotest.(check int)
        (tenant ^ " queued gauge zero after stop")
        0
        (g "barracuda_service_tenant_queued" tenant);
      Alcotest.(check int)
        (tenant ^ " inflight gauge zero after stop")
        0
        (g "barracuda_service_tenant_inflight" tenant))
    [ "metered"; "free"; Service.Scheduler.default_tenant ];
  Alcotest.(check int) "queue depth zero after stop" 0
    (Telemetry.Registry.find_gauge reg "barracuda_service_queue_depth");
  Alcotest.(check int) "busy workers zero after stop" 0
    (Telemetry.Registry.find_gauge reg "barracuda_service_busy_workers");
  (* Counters (not gauges) carry the history: the reject is visible. *)
  Alcotest.(check int) "reject counter survives stop" 1
    (Telemetry.Registry.find_counter
       ~labels:[ ("tenant", "metered"); ("event", "rejected") ]
       reg "barracuda_service_tenant_jobs_total")

(* End-to-end: a tenant id on the wire shows up in the daemon's status
   reply with per-tenant accounting and latency percentiles. *)
let test_status_tenants_end_to_end () =
  with_server "tenants" (fun socket _t ->
      let sub =
        {
          (P.submit_defaults ~kind:P.Check trivial_ptx) with
          P.tenant = Some "acme";
        }
      in
      (match Service.Client.submit ~socket sub with
      | Ok (P.Result _) -> ()
      | Ok r -> Alcotest.failf "unexpected reply: %s" (P.encode_response r)
      | Result.Error e -> Alcotest.failf "submit: %s" e);
      match Service.Client.status ~socket with
      | Result.Error e -> Alcotest.failf "status: %s" e
      | Ok s ->
          let acme = find_tenant "acme" s.P.tenants in
          Alcotest.(check int) "acme submitted" 1 acme.P.t_submitted;
          Alcotest.(check int) "acme completed" 1 acme.P.t_completed;
          Alcotest.(check int) "acme rejected" 0 acme.P.t_rejected;
          Alcotest.(check bool) "acme p99 sane" true
            (acme.P.t_p99_ms >= acme.P.t_p50_ms && acme.P.t_p50_ms >= 0.0);
          (* The default tenant is pre-seated; no campaign runs here. *)
          ignore (find_tenant Service.Scheduler.default_tenant s.P.tenants);
          Alcotest.(check bool) "no campaign in a bare daemon" true
            (s.P.campaign = None))

let suite =
  [
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
    Alcotest.test_case "oversized frame on daemon" `Quick
      test_oversized_frame_daemon;
    Alcotest.test_case "cache accounting" `Quick test_cache_accounting;
    Alcotest.test_case "queue backpressure" `Quick test_backpressure;
    Alcotest.test_case "ping and status" `Quick test_ping_and_status;
    Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
    Alcotest.test_case "job timeout" `Quick test_job_timeout;
    Alcotest.test_case "bad submissions" `Quick test_bad_submissions;
    Alcotest.test_case "bugsuite parity" `Slow test_bugsuite_parity;
    Alcotest.test_case "predict over trace" `Quick test_predict_over_trace;
    Alcotest.test_case "streaming session end-to-end" `Quick
      test_streaming_session;
    Alcotest.test_case "streaming seat exhaustion" `Quick
      test_streaming_seat_exhaustion;
    Alcotest.test_case "streaming integrity in status" `Quick
      test_streaming_integrity_in_status;
    Alcotest.test_case "tenant fairness (DRR)" `Quick test_tenant_fairness;
    Alcotest.test_case "tenant quota rejects" `Quick test_tenant_quota_reject;
    Alcotest.test_case "tenant seat cap" `Quick test_tenant_seat_cap;
    Alcotest.test_case "tenant gauge hygiene" `Quick
      test_tenant_gauge_hygiene;
    Alcotest.test_case "status tenants end-to-end" `Quick
      test_status_tenants_end_to_end;
  ]
