(* Workload suite: each Table 1 benchmark must run to completion and
   report exactly its seeded race profile, natively, under the direct
   detector, and through the full pipeline. *)

module W = Workloads.Workload

let check_workload (w : W.t) () =
  let det, result = W.run_detector w in
  (match result.Simt.Machine.status with
  | Simt.Machine.Completed -> ()
  | Simt.Machine.Max_steps _ | Simt.Machine.Deadline _ ->
      Alcotest.fail "did not complete");
  let report = Barracuda.Detector.report det in
  let shared, global = W.racy_word_counts report in
  Alcotest.(check bool)
    (Format.asprintf "%s: expected %a, found %d shared / %d global"
       w.W.name W.pp_expected w.W.expected shared global)
    true
    (W.races_match w report)

let check_pipeline (w : W.t) () =
  let r = W.run_pipeline w in
  Alcotest.(check bool) "pipeline run completes" true
    (r.Gpu_runtime.Pipeline.machine_result.Simt.Machine.status
    = Simt.Machine.Completed);
  (* the pipeline (with pruning) must at minimum preserve the verdict *)
  let report = Gpu_runtime.Pipeline.report r in
  let has = Barracuda.Report.has_race report in
  let expected = w.W.expected <> W.Race_free in
  Alcotest.(check bool)
    (w.W.name ^ ": pipeline verdict")
    expected has

let test_registry_size () =
  Alcotest.(check int) "26 workloads as in Table 1" 26
    (List.length Workloads.Registry.all)

let test_registry_find () =
  Alcotest.(check string) "find by name" "hashtable"
    (Workloads.Registry.find "hashtable").W.name;
  Alcotest.(check string) "find suite-qualified" "SHOC"
    (Workloads.Registry.find "SHOC/bfs").W.suite;
  Alcotest.check_raises "unknown raises" Not_found (fun () ->
      ignore (Workloads.Registry.find "nonesuch"))

let test_block_scan_output () =
  (* device-wide chained scan: verify the actual prefix sums *)
  let w = Workloads.Registry.find "d_scan" in
  let m = W.machine w in
  let args = w.W.setup m in
  let result = Simt.Machine.launch m w.W.kernel args in
  Alcotest.(check bool) "scan completes" true
    (result.Simt.Machine.status = Simt.Machine.Completed);
  let input_base = Int64.to_int args.(0) in
  let output_base = Int64.to_int args.(1) in
  let n = W.total_threads w in
  let acc = ref 0L in
  for i = 0 to n - 1 do
    let v = Simt.Machine.peek m ~addr:(input_base + (4 * i)) ~width:4 in
    acc := Int64.add !acc v;
    let got = Simt.Machine.peek m ~addr:(output_base + (4 * i)) ~width:4 in
    Alcotest.(check int64) (Printf.sprintf "prefix[%d]" i) !acc got
  done

let test_block_radix_sort_output () =
  let w = Workloads.Registry.find "block_radix_sort" in
  let m = W.machine w in
  let args = w.W.setup m in
  let _ = Simt.Machine.launch m w.W.kernel args in
  let out = Int64.to_int args.(1) in
  let prev = ref Int64.min_int in
  for i = 0 to 127 do
    let v = Simt.Machine.peek m ~addr:(out + (4 * i)) ~width:4 in
    Alcotest.(check bool) (Printf.sprintf "sorted at %d" i) true (v >= !prev);
    prev := v
  done

let test_device_reduce_output () =
  let w = Workloads.Registry.find "d_reduce" in
  let m = W.machine w in
  let args = w.W.setup m in
  let _ = Simt.Machine.launch m w.W.kernel args in
  let input = Int64.to_int args.(0) in
  let out = Int64.to_int args.(3) in
  let expect = ref 0L in
  for i = 0 to W.total_threads w - 1 do
    expect :=
      Int64.add !expect (Simt.Machine.peek m ~addr:(input + (4 * i)) ~width:4)
  done;
  Alcotest.(check int64) "grid total" !expect
    (Simt.Machine.peek m ~addr:out ~width:4)

let test_hotspot_output () =
  let w = Workloads.Registry.find "hotspot" in
  let m = W.machine w in
  let args = w.W.setup m in
  let _ = Simt.Machine.launch m w.W.kernel args in
  (* spot check an interior cell: out = (left + right + power) / 2 *)
  let t_in = Int64.to_int args.(0)
  and power = Int64.to_int args.(1)
  and t_out = Int64.to_int args.(2) in
  let read b i = Simt.Machine.peek m ~addr:(b + (4 * i)) ~width:4 in
  let expect =
    Int64.div (Int64.add (Int64.add (read t_in 4) (read t_in 6)) (read power 5)) 2L
  in
  Alcotest.(check int64) "stencil cell 5" expect (read t_out 5)

let suite =
  [
    Alcotest.test_case "registry has 26 entries" `Quick test_registry_size;
    Alcotest.test_case "registry lookup" `Quick test_registry_find;
    Alcotest.test_case "d_scan computes prefix sums" `Quick test_block_scan_output;
    Alcotest.test_case "block_radix_sort sorts" `Quick test_block_radix_sort_output;
    Alcotest.test_case "d_reduce totals" `Quick test_device_reduce_output;
    Alcotest.test_case "hotspot stencil" `Quick test_hotspot_output;
  ]
  @ List.map
      (fun (w : W.t) ->
        Alcotest.test_case
          (Printf.sprintf "races: %s/%s" w.W.suite w.W.name)
          `Quick (check_workload w))
      Workloads.Registry.all
  @ List.map
      (fun (w : W.t) ->
        Alcotest.test_case
          (Printf.sprintf "pipeline: %s/%s" w.W.suite w.W.name)
          `Quick (check_pipeline w))
      Workloads.Registry.all
