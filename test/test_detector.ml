(* Core detector tests: rule-level unit scenarios, PTVC compression
   equivalence against full clocks, and the flagship property — the
   optimized detector and the literal-semantics reference report the
   same races on randomized kernels. *)

module Ast = Ptx.Ast
module B = Ptx.Builder
module Report = Barracuda.Report
module Wc = Barracuda.Warp_clocks

let lay = Gen.layout

(* ---- Warp_clocks: compression vs full clocks ------------------------ *)

let test_wc_initial_state () =
  let wc = Wc.create lay ~warp:0 in
  Alcotest.(check int) "own clock" 1 (Wc.own_clock wc ~lane:0);
  Alcotest.(check int) "sibling entry" 0 (Wc.entry wc ~lane:0 ~tid:1);
  Alcotest.(check int) "other block entry" 0 (Wc.entry wc ~lane:0 ~tid:10);
  Alcotest.(check bool) "converged" true (Wc.format_of wc = Wc.Converged)

let test_wc_join_fork_advances () =
  let wc = Wc.create lay ~warp:0 in
  Wc.join_fork wc ~mask:0xF;
  Alcotest.(check int) "own advanced" 2 (Wc.own_clock wc ~lane:0);
  Alcotest.(check int) "siblings synchronized" 1 (Wc.entry wc ~lane:0 ~tid:1)

let test_wc_divergence_formats () =
  let wc = Wc.create lay ~warp:0 in
  Wc.join_fork wc ~mask:0xF;
  Wc.push_if wc ~then_mask:0x3 ~else_mask:0xC;
  Alcotest.(check bool) "diverged format" true (Wc.format_of wc = Wc.Diverged);
  (* the then path advanced; suspended lanes stay at the branch clock *)
  Alcotest.(check int) "active sibling" 2 (Wc.entry wc ~lane:0 ~tid:1);
  Alcotest.(check int) "suspended sibling frozen" 1 (Wc.entry wc ~lane:0 ~tid:2);
  Wc.pop_path wc ~mask:0xC;
  (* else path: must not see the then path's advance *)
  Alcotest.(check int) "else view of then lane" 1 (Wc.entry wc ~lane:2 ~tid:0);
  Wc.pop_path wc ~mask:0xF;
  Alcotest.(check bool) "back to converged" true (Wc.format_of wc = Wc.Converged)

let test_wc_overlay_sparse () =
  let wc = Wc.create lay ~warp:0 in
  let outside = Vclock.Cvc.set_point (Vclock.Cvc.bottom lay) 12 7 in
  Wc.acquire wc ~lane:1 outside;
  Alcotest.(check int) "acquired entry" 7 (Wc.entry wc ~lane:1 ~tid:12);
  Alcotest.(check int) "other lane unaffected" 0 (Wc.entry wc ~lane:0 ~tid:12);
  Alcotest.(check bool) "sparse format" true (Wc.format_of wc = Wc.Sparse_vc);
  (* a join spreads the overlay to the whole active set *)
  Wc.join_fork wc ~mask:0xF;
  Alcotest.(check int) "overlay propagated" 7 (Wc.entry wc ~lane:0 ~tid:12)

let test_wc_barrier_block_clock () =
  let wc0 = Wc.create lay ~warp:0 in
  let wc1 = Wc.create lay ~warp:1 in
  Wc.join_fork wc0 ~mask:0xF;
  Wc.join_fork wc0 ~mask:0xF;
  let clock = max (Wc.max_own wc0) (Wc.max_own wc1) in
  Wc.apply_barrier wc0 ~clock ~overlay:None;
  Wc.apply_barrier wc1 ~clock ~overlay:None;
  (* lane 0 of warp 0 now sees warp 1's threads at the barrier clock *)
  Alcotest.(check int) "cross-warp entry" clock (Wc.entry wc0 ~lane:0 ~tid:4);
  Alcotest.(check int) "block clock" clock (Wc.block_clock wc0);
  Alcotest.(check int) "own past barrier" (clock + 1) (Wc.own_clock wc0 ~lane:0)

let test_wc_materialize_roundtrip () =
  let wc = Wc.create lay ~warp:0 in
  Wc.join_fork wc ~mask:0xF;
  Wc.push_if wc ~then_mask:0x5 ~else_mask:0xA;
  let cvc = Wc.materialize wc ~lane:0 in
  let full = Wc.to_vector_clock wc ~lane:0 in
  Alcotest.(check bool) "materialized clock equals expansion" true
    (Vclock.Vector_clock.equal (Vclock.Cvc.to_vector_clock cvc) full)

let test_wc_release_increment_breaks_uniformity () =
  let wc = Wc.create lay ~warp:0 in
  Wc.release_increment wc ~lane:2;
  Alcotest.(check int) "released lane ahead" 2 (Wc.own_clock wc ~lane:2);
  Alcotest.(check int) "others unchanged" 1 (Wc.own_clock wc ~lane:0);
  Wc.join_fork wc ~mask:0xF;
  (* renormalization catches everyone up past the max *)
  Alcotest.(check int) "renormalized" 3 (Wc.own_clock wc ~lane:0)

(* ---- Report --------------------------------------------------------- *)

let test_report_dedup_and_classes () =
  let r = Report.create ~layout:lay () in
  let loc = Gtrace.Loc.global 0 in
  Report.add_race r ~prev_insn:1 ~cur_insn:2 ~loc ~prev_tid:0
    ~prev_kind:Report.Write ~cur_tid:1 ~cur_kind:Report.Write
    ~same_instruction:false;
  Report.add_race r ~prev_insn:1 ~cur_insn:2 ~loc ~prev_tid:0
    ~prev_kind:Report.Write ~cur_tid:1 ~cur_kind:Report.Write
    ~same_instruction:false;
  Alcotest.(check int) "duplicates suppressed" 1 (Report.race_count r);
  Alcotest.(check bool) "intra-warp classification" true
    (Report.classify lay 0 1 = Report.Intra_warp);
  Alcotest.(check bool) "intra-block classification" true
    (Report.classify lay 0 5 = Report.Intra_block);
  Alcotest.(check bool) "inter-block classification" true
    (Report.classify lay 0 9 = Report.Inter_block)

let test_report_cap () =
  let r = Report.create ~max_reports:2 ~layout:lay () in
  for i = 0 to 9 do
    Report.add_race r ~prev_insn:(-1) ~cur_insn:(-1)
      ~loc:(Gtrace.Loc.global i) ~prev_tid:0 ~prev_kind:Report.Write
      ~cur_tid:1 ~cur_kind:Report.Write ~same_instruction:false
  done;
  Alcotest.(check int) "count sees all" 10 (Report.race_count r);
  Alcotest.(check int) "list capped" 2 (List.length (Report.errors r))

(* ---- Shadow --------------------------------------------------------- *)

let test_shadow_pages_on_demand () =
  let s = Barracuda.Shadow.create () in
  Alcotest.(check int) "no pages initially" 0 (Barracuda.Shadow.pages s);
  ignore (Barracuda.Shadow.find s (Gtrace.Loc.global 5));
  ignore (Barracuda.Shadow.find s (Gtrace.Loc.global 6));
  Alcotest.(check int) "one page" 1 (Barracuda.Shadow.pages s);
  Alcotest.(check int) "two cells" 2 (Barracuda.Shadow.cells s);
  ignore (Barracuda.Shadow.find s (Gtrace.Loc.shared ~block:1 5));
  Alcotest.(check int) "shared space gets its own page" 2
    (Barracuda.Shadow.pages s);
  Alcotest.(check int) "32 bytes per cell" 96 (Barracuda.Shadow.bytes s)

let test_shadow_granularity () =
  let s = Barracuda.Shadow.create ~granularity:4 () in
  let cells =
    Barracuda.Shadow.cells_of_access s (Gtrace.Loc.global 2) ~width:4
  in
  Alcotest.(check int) "unaligned word spans two cells" 2 (List.length cells);
  let s1 = Barracuda.Shadow.create () in
  Alcotest.(check int) "byte granularity: 4 cells" 4
    (List.length (Barracuda.Shadow.cells_of_access s1 (Gtrace.Loc.global 0) ~width:4))

(* ---- Detector vs Reference equivalence ------------------------------ *)

type race_key = {
  loc : Gtrace.Loc.t;
  prev_tid : int;
  prev_kind : Report.access_kind;
  cur_tid : int;
  cur_kind : Report.access_kind;
}

let race_set report =
  Report.errors report
  |> List.filter_map (function
       | Report.Race r ->
           Some
             {
               loc = r.Report.loc;
               prev_tid = r.Report.prev_tid;
               prev_kind = r.Report.prev_kind;
               cur_tid = r.Report.cur_tid;
               cur_kind = r.Report.cur_kind;
             }
       | Report.Barrier_divergence _ -> None)
  |> List.sort_uniq Stdlib.compare

let run_both prog =
  let k = Gen.kernel_of_program prog in
  let m1 = Simt.Machine.create ~layout:lay () in
  let args1 = Gen.setup m1 in
  let ops, _ = Gtrace.Infer.run ~layout:lay m1 k args1 in
  let reference = Barracuda.Reference.create ~max_reports:100000 ~layout:lay () in
  Barracuda.Reference.run reference ops;
  let m2 = Simt.Machine.create ~layout:lay () in
  let args2 = Gen.setup m2 in
  let config =
    { Barracuda.Detector.default_config with max_reports = 100000 }
  in
  let det, _ = Barracuda.Detector.run ~config ~machine:m2 k args2 in
  ( race_set (Barracuda.Reference.report reference),
    race_set (Barracuda.Detector.report det) )

let pp_race_key ppf k =
  Format.fprintf ppf "%a: %a t%d vs %a t%d" Gtrace.Loc.pp k.loc Report.pp_kind
    k.prev_kind k.prev_tid Report.pp_kind k.cur_kind k.cur_tid

let prop_detector_matches_reference =
  QCheck2.Test.make
    ~name:"optimized detector and reference semantics report identical races"
    ~count:400 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let ref_races, det_races = run_both prog in
      if ref_races = det_races then true
      else
        QCheck2.Test.fail_reportf
          "@[<v>mismatch!@,reference: %a@,detector:  %a@]"
          (Format.pp_print_list pp_race_key)
          ref_races
          (Format.pp_print_list pp_race_key)
          det_races)

let prop_detector_deterministic =
  QCheck2.Test.make ~name:"detector reports are deterministic" ~count:100
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let _, a = run_both prog in
      let _, b = run_both prog in
      a = b)

(* ---- Directed rule scenarios ---------------------------------------- *)

let detect prog =
  let k = Gen.kernel_of_program prog in
  let m = Simt.Machine.create ~layout:lay () in
  let args = Gen.setup m in
  let det, _ = Barracuda.Detector.run ~machine:m k args in
  Barracuda.Detector.report det

let test_rule_write_write () =
  let r = detect [ Gen.Global_store (0, Gen.Lane_dependent) ] in
  Alcotest.(check bool) "intra-warp ww detected" true (Report.has_race r)

let test_rule_same_value_filter () =
  let r = detect [ Gen.If_block [ Gen.Global_store (0, Gen.Const 1) ] ] in
  (* all lanes in each warp write 1 to the same word: filtered within a
     warp instruction, but warps/blocks still conflict... restrict to a
     single warp via tid<4 *)
  ignore r;
  let r2 =
    detect [ Gen.If_block [ Gen.If_tid_lt (4, [ Gen.Global_store (0, Gen.Const 1) ], []) ] ]
  in
  Alcotest.(check bool) "same-value intra-warp filtered" false
    (Report.has_race r2)

let test_rule_read_inflation () =
  (* concurrent readers then a writer: the read VC must catch all *)
  let r =
    detect [ Gen.Global_load 0; Gen.If_block [ Gen.If_tid_lt (1, [ Gen.Global_store (0, Gen.Const 2) ], []) ] ]
  in
  Alcotest.(check bool) "write after shared readers races" true
    (Report.has_race r)

let test_rule_atomics_no_race () =
  let r = detect [ Gen.Atomic_add 0 ] in
  Alcotest.(check bool) "atomic-atomic clean" false (Report.has_race r)

let test_rule_barrier_separates () =
  let r =
    detect
      [
        Gen.If_block [ Gen.If_tid_lt (1, [ Gen.Shared_store (0, Gen.Const 1) ], []) ];
        Gen.Barrier;
        Gen.Shared_load 0;
      ]
  in
  Alcotest.(check bool) "barrier orders shared handoff" false
    (Report.has_race r)

let test_rule_no_barrier_races () =
  let r =
    detect
      [
        Gen.If_block [ Gen.If_tid_lt (1, [ Gen.Shared_store (0, Gen.Const 1) ], []) ];
        Gen.Shared_load 0;
      ]
  in
  Alcotest.(check bool) "missing barrier detected" true (Report.has_race r)

let suite =
  [
    Alcotest.test_case "wc initial state" `Quick test_wc_initial_state;
    Alcotest.test_case "wc join-fork" `Quick test_wc_join_fork_advances;
    Alcotest.test_case "wc divergence formats" `Quick test_wc_divergence_formats;
    Alcotest.test_case "wc overlays" `Quick test_wc_overlay_sparse;
    Alcotest.test_case "wc barrier" `Quick test_wc_barrier_block_clock;
    Alcotest.test_case "wc materialize" `Quick test_wc_materialize_roundtrip;
    Alcotest.test_case "wc release increment" `Quick
      test_wc_release_increment_breaks_uniformity;
    Alcotest.test_case "report dedup/classes" `Quick test_report_dedup_and_classes;
    Alcotest.test_case "report cap" `Quick test_report_cap;
    Alcotest.test_case "shadow pages" `Quick test_shadow_pages_on_demand;
    Alcotest.test_case "shadow granularity" `Quick test_shadow_granularity;
    Alcotest.test_case "rule: write-write" `Quick test_rule_write_write;
    Alcotest.test_case "rule: same-value filter" `Quick test_rule_same_value_filter;
    Alcotest.test_case "rule: read inflation" `Quick test_rule_read_inflation;
    Alcotest.test_case "rule: atomics" `Quick test_rule_atomics_no_race;
    Alcotest.test_case "rule: barrier orders" `Quick test_rule_barrier_separates;
    Alcotest.test_case "rule: missing barrier" `Quick test_rule_no_barrier_races;
  ]
  @ List.map Gen.to_alcotest
      [ prop_detector_matches_reference; prop_detector_deterministic ]
