(* Instrumentation pass: logging coverage, pruning, predicated
   rewrites, TID preamble, and semantic preservation. *)

module Ast = Ptx.Ast
module B = Ptx.Builder
module Pass = Instrument.Pass
module Stats = Instrument.Stats

let parse = Ptx.Parser.kernel_of_string

let test_tid_preamble () =
  let k = parse ".entry k (.param .u64 a) { ret; }" in
  let r = Pass.instrument k in
  match r.Pass.kernel.Ast.body.(0).Ast.kind with
  | Ast.Mad { dst = "%lgtid"; _ } -> ()
  | _ -> Alcotest.fail "missing TID computation preamble"

let test_logging_coverage () =
  let k =
    parse
      {|.entry k (.param .u64 a) {
        ld.global.u32 %r1, [a];
        add.s64 %r2, %r1, 1;
        st.shared.u32 [a], %r2;
        atom.global.add.u32 %r3, [a], 1;
        membar.gl;
        bar.sync 0;
        ld.local.u32 %r4, [a];
        ret; }|}
  in
  let r = Pass.instrument k in
  let s = r.Pass.stats in
  Alcotest.(check int) "memory logged (ld+st+atom, not local)" 3
    s.Stats.mem_logged;
  Alcotest.(check int) "sync logged (fence+bar)" 2 s.Stats.sync_logged;
  Alcotest.(check bool) "local access unlogged" true
    (not r.Pass.logged.(6));
  Alcotest.(check bool) "arith unlogged" true (not r.Pass.logged.(1))

let test_fraction_below_one () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
      let r = Pass.instrument w.Workloads.Workload.kernel in
      let f = Stats.fraction r.Pass.stats in
      Alcotest.(check bool)
        (w.Workloads.Workload.name ^ " fraction sane")
        true
        (f >= 0.0 && f <= 0.6))
    Workloads.Registry.all

let test_pruning_within_block () =
  let k =
    parse
      {|.entry k (.param .u64 a) {
        ld.global.u32 %r1, [a];
        ld.global.u32 %r2, [a];
        st.global.u32 [a], %r2;
        ret; }|}
  in
  let unopt = Pass.instrument ~prune:false ~static:false k in
  let opt = Pass.instrument k in
  Alcotest.(check int) "no pruning unopt" 0
    (Stats.pruned unopt.Pass.stats);
  (* the overlapping load/store pair is statically racy, so the static
     tier leaves it alone and block pruning does the work *)
  Alcotest.(check int) "repeat accesses pruned" 2
    opt.Pass.stats.Stats.pruned_block;
  Alcotest.(check bool) "first access still logged" true opt.Pass.logged.(0);
  Alcotest.(check bool) "second access pruned" true (not opt.Pass.logged.(1))

let test_pruning_killed_by_redefinition () =
  let k =
    parse
      {|.entry k (.param .u64 a) {
        ld.global.u32 %r1, [%rd1];
        add.s64 %rd1, %rd1, 4;
        ld.global.u32 %r2, [%rd1];
        ret; }|}
  in
  let opt = Pass.instrument ~static:false k in
  Alcotest.(check int) "address register redefined: no pruning" 0
    (Stats.pruned opt.Pass.stats);
  (* with the static tier on, the two loads are provably safe (the
     kernel has no stores at all) and lose their logging that way *)
  let stat = Pass.instrument k in
  Alcotest.(check int) "read-only kernel statically pruned" 2
    stat.Pass.stats.Stats.pruned_static

let test_pruning_stops_at_fence () =
  let k =
    parse
      {|.entry k (.param .u64 a) {
        st.global.u32 [a], 1;
        membar.gl;
        st.global.u32 [a], 2;
        ret; }|}
  in
  let opt = Pass.instrument k in
  Alcotest.(check int) "fence resets the window" 0
    (Stats.pruned opt.Pass.stats)

let test_pruning_stops_at_block_boundary () =
  let k =
    parse
      {|.entry k (.param .u64 a) {
        ld.global.u32 %r1, [a];
        bra.uni L;
L:      ld.global.u32 %r2, [a];
        ret; }|}
  in
  let opt = Pass.instrument ~static:false k in
  Alcotest.(check int) "different basic block: no pruning" 0
    (Stats.pruned opt.Pass.stats)

let test_predicated_rewrite () =
  let k =
    parse ".entry k (.param .u64 a) { @%p1 st.global.u32 [a], 1; ret; }"
  in
  let r = Pass.instrument k in
  Alcotest.(check int) "predicated access rewritten" 1
    r.Pass.stats.Stats.predicated_rewritten;
  (* the rewritten store is unpredicated and reachable only under the
     original guard; the kernel must still be well-formed *)
  Ptx.Validate.check_exn r.Pass.kernel;
  let has_unguarded_store =
    Array.exists
      (fun i ->
        match i.Ast.kind with
        | Ast.St _ -> i.Ast.guard = None
        | _ -> false)
      r.Pass.kernel.Ast.body
  in
  Alcotest.(check bool) "store unpredicated after rewrite" true
    has_unguarded_store

let test_convergence_points_logged () =
  let b = B.create ~params:[ "a" ] "conv" in
  B.if_else b Ast.C_eq (Ast.Sreg Ast.Tid) (B.imm 0)
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 1))
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 2));
  B.mov b (B.fresh_reg b) (B.imm 3);
  let k = B.finish b in
  let r = Pass.instrument k in
  Alcotest.(check bool) "convergence point logged" true
    (r.Pass.stats.Stats.convergence_logged >= 1)

let test_origin_mapping () =
  let k =
    parse
      ".entry k (.param .u64 a) { ld.global.u32 %r1, [a]; st.global.u32 [a], %r1; ret; }"
  in
  let r = Pass.instrument k in
  (* every original instruction appears exactly once in origin *)
  let counts = Array.make (Array.length k.Ast.body) 0 in
  Array.iter
    (fun o -> if o >= 0 then counts.(o) <- counts.(o) + 1)
    r.Pass.origin;
  Alcotest.(check bool) "each original instruction kept once" true
    (Array.for_all (Int.equal 1) counts)

let prop_instrumented_kernels_still_valid =
  QCheck2.Test.make ~name:"instrumented kernels remain well-formed" ~count:150
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      Ptx.Validate.check (Pass.instrument k).Pass.kernel = [])

let prop_instrumented_execution_equivalent =
  QCheck2.Test.make
    ~name:
      "instrumented race-free kernels compute the same memory state"
    ~count:100 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      (* racy programs have schedule-dependent results and
         instrumentation perturbs the schedule: restrict to race-free *)
      (let md = Simt.Machine.create ~layout:Gen.layout () in
       let argsd = Gen.setup md in
       let det, _ = Barracuda.Detector.run ~machine:md k argsd in
       if Barracuda.Report.has_race (Barracuda.Detector.report det) then
         QCheck2.assume_fail ());
      let inst = (Pass.instrument k).Pass.kernel in
      let m1 = Simt.Machine.create ~layout:Gen.layout () in
      let args1 = Gen.setup m1 in
      let _ = Simt.Machine.launch m1 k args1 in
      let m2 = Simt.Machine.create ~layout:Gen.layout () in
      let args2 = Gen.setup m2 in
      let _ = Simt.Machine.launch m2 inst args2 in
      (* compare the deterministic words (sync locations are exempt
         from race checking and may differ) *)
      let ok = ref true in
      List.iter
        (fun w ->
          let v1 =
            Simt.Machine.peek m1 ~addr:(Int64.to_int args1.(0) + (4 * w)) ~width:4
          in
          let v2 =
            Simt.Machine.peek m2 ~addr:(Int64.to_int args2.(0) + (4 * w)) ~width:4
          in
          if v1 <> v2 then ok := false)
        (Gen.comparable_word_offsets ());
      !ok)

let suite =
  [
    Alcotest.test_case "tid preamble" `Quick test_tid_preamble;
    Alcotest.test_case "logging coverage" `Quick test_logging_coverage;
    Alcotest.test_case "fractions sane on workloads" `Quick
      test_fraction_below_one;
    Alcotest.test_case "pruning within block" `Quick test_pruning_within_block;
    Alcotest.test_case "pruning killed by redefinition" `Quick
      test_pruning_killed_by_redefinition;
    Alcotest.test_case "pruning stops at fences" `Quick test_pruning_stops_at_fence;
    Alcotest.test_case "pruning stops at block boundary" `Quick
      test_pruning_stops_at_block_boundary;
    Alcotest.test_case "predicated rewrite" `Quick test_predicated_rewrite;
    Alcotest.test_case "convergence points logged" `Quick
      test_convergence_points_logged;
    Alcotest.test_case "origin mapping" `Quick test_origin_mapping;
  ]
  @ List.map Gen.to_alcotest
      [
        prop_instrumented_kernels_still_valid;
        prop_instrumented_execution_equivalent;
      ]
