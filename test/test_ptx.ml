(* Tests for the PTX subset: lexer, parser, printer roundtrip, builder
   and static validation. *)

module Ast = Ptx.Ast
module B = Ptx.Builder

(* ---- Lexer --------------------------------------------------------- *)

let tokens_of s =
  let lx = Ptx.Lexer.of_string s in
  let rec go acc =
    match Ptx.Lexer.next lx with
    | Ptx.Lexer.Eof -> List.rev acc
    | t -> go (t :: acc)
  in
  go []

let test_lexer_mnemonics () =
  match tokens_of "ld.global.cg.u32 %r1, [a+4];" with
  | [ Word "ld.global.cg.u32"; Regname "%r1"; Comma; Lbracket; Word "a";
      Plus; Int 4L; Rbracket; Semi ] ->
      ()
  | toks ->
      Alcotest.failf "unexpected tokens: %a"
        (Format.pp_print_list Ptx.Lexer.pp_token)
        toks

let test_lexer_special_regs () =
  match tokens_of "%tid.x %laneid" with
  | [ Regname "%tid.x"; Regname "%laneid" ] -> ()
  | _ -> Alcotest.fail "special registers mis-lexed"

let test_lexer_comments () =
  (* "ret" ";" "ret": both comment styles vanish *)
  Alcotest.(check int) "comments skipped" 3
    (List.length (tokens_of "ret; // trailing\n/* block\ncomment */ ret"))

let test_lexer_numbers () =
  match tokens_of "0x10 -3 42" with
  | [ Int 16L; Int (-3L); Int 42L ] -> ()
  | _ -> Alcotest.fail "numbers mis-lexed"

let test_lexer_error_line () =
  match tokens_of "ret;\n ~" with
  | exception Ptx.Lexer.Error { line = 2; _ } -> ()
  | exception Ptx.Lexer.Error { line; _ } ->
      Alcotest.failf "wrong error line %d" line
  | _ -> Alcotest.fail "expected a lexer error"

(* ---- Parser -------------------------------------------------------- *)

let sample_ptx =
  {|
.version 4.3
.target sm_35
.address_size 64

.visible .entry vecadd (.param .u64 a, .param .u64 b)
{
    .shared .align 4 .b8 buf[64];
    mov.u32 %r1, %tid.x;
    mad.lo.s64 %rd1, %r1, 4, a;
    ld.global.cg.u32 %r2, [%rd1];
    st.shared.u32 [buf+8], %r2;
    bar.sync 0;
    atom.global.cas.b32 %r3, [b], 0, 1;
    @%p1 bra DONE;
    membar.gl;
DONE:
    ret;
}
|}

let test_parser_sample () =
  let k = Ptx.Parser.kernel_of_string sample_ptx in
  Alcotest.(check string) "name" "vecadd" k.Ast.kname;
  Alcotest.(check (list string)) "params" [ "a"; "b" ] k.Ast.params;
  Alcotest.(check (list (pair string int))) "shared" [ ("buf", 64) ]
    k.Ast.shared_decls;
  Alcotest.(check int) "instructions" 9 (Array.length k.Ast.body);
  (match k.Ast.body.(2).Ast.kind with
  | Ast.Ld { space = Ast.Global; cache = Ast.Cg; width = 4; dst = "%r2"; _ } ->
      ()
  | _ -> Alcotest.fail "load mis-parsed");
  (match k.Ast.body.(3).Ast.kind with
  | Ast.St { space = Ast.Shared; addr = { offset = 8; _ }; _ } -> ()
  | _ -> Alcotest.fail "store mis-parsed");
  (match k.Ast.body.(5).Ast.kind with
  | Ast.Atom { op = Ast.A_cas; src2 = Some _; _ } -> ()
  | _ -> Alcotest.fail "cas mis-parsed");
  (match k.Ast.body.(6) with
  | { Ast.guard = Some (true, "%p1"); kind = Ast.Bra { target = "DONE"; _ }; _ }
    ->
      ()
  | _ -> Alcotest.fail "guarded branch mis-parsed");
  match k.Ast.body.(8) with
  | { Ast.label = Some "DONE"; kind = Ast.Ret; _ } -> ()
  | _ -> Alcotest.fail "label mis-attached"

let test_parser_errors () =
  let expect_error s =
    match Ptx.Parser.program_of_string s with
    | exception Ptx.Parser.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_error ".entry k { atom.global.cas.b32 %r1, [a], 0; }";
  expect_error ".entry k { membar; }";
  expect_error ".entry k { frobnicate %r1; }";
  expect_error ".entry k { ld.global.u32 %r1 [a]; }"

let test_parser_predicated_negation () =
  let k =
    Ptx.Parser.kernel_of_string
      ".entry k (.param .u64 a) { @!%p2 st.global.u32 [a], 1; ret; }"
  in
  match k.Ast.body.(0).Ast.guard with
  | Some (false, "%p2") -> ()
  | _ -> Alcotest.fail "negated guard mis-parsed"

(* ---- Printer roundtrip -------------------------------------------- *)

let strip_labels_positions (k : Ast.kernel) =
  (* compare structure: kinds, guards and label *presence* per index *)
  Array.map
    (fun i -> (i.Ast.kind, i.Ast.guard, i.Ast.label <> None))
    k.Ast.body

let test_roundtrip_sample () =
  let k = Ptx.Parser.kernel_of_string sample_ptx in
  let k' = Ptx.Parser.kernel_of_string (Ptx.Printer.kernel_to_string k) in
  Alcotest.(check bool) "structure preserved" true
    (strip_labels_positions k = strip_labels_positions k');
  Alcotest.(check (list string)) "params" k.Ast.params k'.Ast.params

(* The full printer<->parser contract: the re-parse of a printed kernel
   is structurally *equal* — every instruction record (kind, guard,
   label string), the name, the parameters and the shared declarations.
   The AST stores no source positions, so plain equality is exact. *)
let prop_builder_print_parse_roundtrip =
  QCheck2.Test.make ~name:"builder kernels roundtrip through print+parse"
    ~count:100 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let k' = Ptx.Parser.kernel_of_string (Ptx.Printer.kernel_to_string k) in
      k = k')

(* The same contract over the instruction forms the repair engine
   emits: load/store pairs promoted to atomics (add-0 reads, exch
   writes, plus the cas form), block fences strengthened to global and
   system scope, and bar.sync/membar insertions.  Every mutated kernel
   must survive print -> parse with full equality and still validate —
   exactly what the validation gauntlet's first stage relies on. *)
let repair_style_mutations (k : Ast.kernel) =
  let promote (i : Ast.insn) =
    match i.Ast.kind with
    | Ast.Ld { space; width; dst; addr; _ } ->
        {
          i with
          Ast.kind =
            Ast.Atom
              {
                space;
                op = Ast.A_add;
                width;
                dst;
                addr;
                src = Ast.Imm 0L;
                src2 = None;
              };
        }
    | Ast.St { space; width; src; addr; _ } ->
        {
          i with
          Ast.kind =
            Ast.Atom
              { space; op = Ast.A_exch; width; dst = "%rrt0"; addr; src;
                src2 = None };
        }
    | _ -> i
  in
  let strengthen (i : Ast.insn) =
    match i.Ast.kind with
    | Ast.Membar Ast.Cta -> { i with Ast.kind = Ast.Membar Ast.Gl }
    | Ast.Membar Ast.Gl -> { i with Ast.kind = Ast.Membar Ast.Sys }
    | _ -> i
  in
  let with_body body = { k with Ast.body } in
  let inserted =
    (* prepend the synchronization forms repair inserts, plus a cas,
       at index 0 — never a branch target, so labels stay intact *)
    with_body
      (Array.append
         [|
           Ast.mk (Ast.Bar_sync 0);
           Ast.mk (Ast.Membar Ast.Gl);
           Ast.mk
             (Ast.Atom
                {
                  space = Ast.Global;
                  op = Ast.A_cas;
                  width = 4;
                  dst = "%rrt1";
                  addr = { Ast.base = Ast.Sym "g"; offset = 0 };
                  src = Ast.Imm 0L;
                  src2 = Some (Ast.Imm 1L);
                });
         |]
         k.Ast.body)
  in
  [
    with_body (Array.map promote k.Ast.body);
    with_body (Array.map strengthen k.Ast.body);
    inserted;
  ]

let prop_repair_forms_roundtrip =
  QCheck2.Test.make
    ~name:"repair-emitted forms roundtrip through print+parse and validate"
    ~count:100 ~print:Gen.print_program Gen.gen_program (fun prog ->
      List.for_all
        (fun k ->
          let k' =
            Ptx.Parser.kernel_of_string (Ptx.Printer.kernel_to_string k)
          in
          k = k' && Ptx.Validate.check k' = [])
        (repair_style_mutations (Gen.kernel_of_program prog)))

(* ---- Builder ------------------------------------------------------- *)

let test_builder_if_else_shape () =
  let b = B.create "k" in
  B.if_else b Ast.C_eq (Ast.Sreg Ast.Tid) (B.imm 0)
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 1))
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 2));
  let k = B.finish b in
  let branches =
    Array.to_list k.Ast.body
    |> List.filter (fun i ->
           match i.Ast.kind with Ast.Bra _ -> true | _ -> false)
  in
  Alcotest.(check int) "two branches (cond + skip-else)" 2
    (List.length branches);
  Ptx.Validate.check_exn k

let test_builder_auto_ret () =
  let b = B.create "k" in
  B.mov b (B.fresh_reg b) (B.imm 1);
  let k = B.finish b in
  match k.Ast.body.(Array.length k.Ast.body - 1).Ast.kind with
  | Ast.Ret -> ()
  | _ -> Alcotest.fail "finish must append ret"

let test_builder_while_loops () =
  let b = B.create "k" in
  let i = B.fresh_reg b in
  B.mov b i (B.imm 0);
  B.while_ b Ast.C_lt
    (fun _ -> (B.reg i, B.imm 3))
    (fun b -> B.binop b Ast.B_add i (B.reg i) (B.imm 1));
  Ptx.Validate.check_exn (B.finish b)

(* ---- Validate ------------------------------------------------------ *)

let test_validate_catches () =
  let bad_branch =
    {
      Ast.kname = "k";
      params = [];
      shared_decls = [];
      body = [| Ast.mk (Ast.Bra { uni = false; target = "nowhere" }) |];
    }
  in
  Alcotest.(check bool) "dangling branch" false
    (Ptx.Validate.check bad_branch = []);
  let bad_sym =
    {
      Ast.kname = "k";
      params = [];
      shared_decls = [];
      body =
        [|
          Ast.mk
            (Ast.St
               {
                 space = Ast.Global;
                 cache = Ast.Ca;
                 width = 4;
                 src = Ast.Imm 0L;
                 addr = { base = Ast.Sym "ghost"; offset = 0 };
               });
        |];
    }
  in
  Alcotest.(check bool) "unknown symbol" false (Ptx.Validate.check bad_sym = [])

let prop_builder_kernels_validate =
  QCheck2.Test.make ~name:"generated kernels are well-formed" ~count:200
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      Ptx.Validate.check (Gen.kernel_of_program prog) = [])

let suite =
  [
    Alcotest.test_case "lexer mnemonics" `Quick test_lexer_mnemonics;
    Alcotest.test_case "lexer special regs" `Quick test_lexer_special_regs;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer error lines" `Quick test_lexer_error_line;
    Alcotest.test_case "parser sample kernel" `Quick test_parser_sample;
    Alcotest.test_case "parser rejects malformed" `Quick test_parser_errors;
    Alcotest.test_case "parser negated guard" `Quick
      test_parser_predicated_negation;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip_sample;
    Alcotest.test_case "builder if/else shape" `Quick test_builder_if_else_shape;
    Alcotest.test_case "builder auto ret" `Quick test_builder_auto_ret;
    Alcotest.test_case "builder while loop" `Quick test_builder_while_loops;
    Alcotest.test_case "validate catches errors" `Quick test_validate_catches;
  ]
  @ List.map Gen.to_alcotest
      [
        prop_builder_print_parse_roundtrip;
        prop_repair_forms_roundtrip;
        prop_builder_kernels_validate;
      ]
