(* CFG construction, dominance/post-dominance, and reconvergence
   points. *)

module Ast = Ptx.Ast
module B = Ptx.Builder

let diamond_kernel =
  (* if/else diamond with a shared join *)
  let b = B.create "diamond" in
  B.if_else b Ast.C_eq (Ast.Sreg Ast.Tid) (B.imm 0)
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 1))
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 2));
  B.mov b (B.fresh_reg b) (B.imm 3);
  B.finish b

let loop_kernel =
  let b = B.create "loop" in
  let i = B.fresh_reg b in
  B.mov b i (B.imm 0);
  B.while_ b Ast.C_lt
    (fun _ -> (B.reg i, B.imm 4))
    (fun b -> B.binop b Ast.B_add i (B.reg i) (B.imm 1));
  B.finish b

let find_cond_branch g =
  let k = Cfg.Graph.kernel g in
  let found = ref (-1) in
  Array.iteri
    (fun i _ -> if !found < 0 && Cfg.Graph.is_conditional_branch g i then found := i)
    k.Ast.body;
  Alcotest.(check bool) "has a conditional branch" true (!found >= 0);
  !found

let test_diamond_blocks () =
  let g = Cfg.Graph.of_kernel diamond_kernel in
  (* entry, then, else, join = 4 blocks *)
  Alcotest.(check int) "block count" 4 (Array.length (Cfg.Graph.blocks g));
  let entry = (Cfg.Graph.blocks g).(0) in
  Alcotest.(check int) "entry has two successors" 2 (List.length entry.Cfg.Graph.succs)

let test_diamond_reconvergence () =
  let g = Cfg.Graph.of_kernel diamond_kernel in
  let pdoms = Cfg.Dominance.post_dominators g in
  let br = find_cond_branch g in
  let rb = Cfg.Dominance.reconvergence_block g pdoms br in
  (* the reconvergence block must contain the post-join mov (value 3) *)
  let blk = (Cfg.Graph.blocks g).(rb) in
  let has_join_mov = ref false in
  for i = blk.Cfg.Graph.first to blk.Cfg.Graph.last do
    match diamond_kernel.Ast.body.(i).Ast.kind with
    | Ast.Mov { src = Ast.Imm 3L; _ } -> has_join_mov := true
    | _ -> ()
  done;
  Alcotest.(check bool) "reconverges at the join" true !has_join_mov

let test_diamond_dominance () =
  let g = Cfg.Graph.of_kernel diamond_kernel in
  let doms = Cfg.Dominance.dominators g in
  Alcotest.(check bool) "entry dominates everything" true
    (Array.for_all
       (fun (b : Cfg.Graph.block) -> Cfg.Dominance.dominates doms 0 b.Cfg.Graph.id)
       (Cfg.Graph.blocks g));
  (* neither arm dominates the join *)
  let join =
    Cfg.Dominance.reconvergence_block g
      (Cfg.Dominance.post_dominators g)
      (find_cond_branch g)
  in
  Alcotest.(check bool) "then arm does not dominate join" false
    (Cfg.Dominance.dominates doms 1 join && Cfg.Dominance.dominates doms 2 join)

let test_loop_back_edge () =
  let g = Cfg.Graph.of_kernel loop_kernel in
  let pdoms = Cfg.Dominance.post_dominators g in
  let br = find_cond_branch g in
  let rb = Cfg.Dominance.reconvergence_block g pdoms br in
  (* the loop-exit branch reconverges after the loop *)
  let blk = (Cfg.Graph.blocks g).(rb) in
  Alcotest.(check bool) "reconvergence after branch" true
    (blk.Cfg.Graph.first > br)

let test_preds_consistent () =
  let g = Cfg.Graph.of_kernel loop_kernel in
  Array.iter
    (fun (b : Cfg.Graph.block) ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "B%d in preds of %d" b.Cfg.Graph.id s)
            true
            (List.mem b.Cfg.Graph.id (Cfg.Graph.preds g s)))
        b.Cfg.Graph.succs)
    (Cfg.Graph.blocks g)

let prop_reconvergence_defined =
  QCheck2.Test.make
    ~name:"every conditional branch of a generated kernel reconverges"
    ~count:150 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let g = Cfg.Graph.of_kernel k in
      let pdoms = Cfg.Dominance.post_dominators g in
      let ok = ref true in
      Array.iteri
        (fun i _ ->
          if Cfg.Graph.is_conditional_branch g i then
            match Cfg.Dominance.reconvergence_block g pdoms i with
            | _ -> ()
            | exception _ -> ok := false)
        k.Ast.body;
      !ok)

let prop_block_partition =
  QCheck2.Test.make ~name:"blocks partition the instruction array" ~count:150
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let g = Cfg.Graph.of_kernel k in
      let n = Array.length k.Ast.body in
      let covered = Array.make n 0 in
      Array.iter
        (fun (b : Cfg.Graph.block) ->
          for i = b.Cfg.Graph.first to b.Cfg.Graph.last do
            covered.(i) <- covered.(i) + 1
          done)
        (Cfg.Graph.blocks g);
      Array.for_all (Int.equal 1) covered)

let suite =
  [
    Alcotest.test_case "diamond blocks" `Quick test_diamond_blocks;
    Alcotest.test_case "diamond reconvergence" `Quick test_diamond_reconvergence;
    Alcotest.test_case "diamond dominance" `Quick test_diamond_dominance;
    Alcotest.test_case "loop reconvergence" `Quick test_loop_back_edge;
    Alcotest.test_case "preds consistent with succs" `Quick test_preds_consistent;
  ]
  @ List.map Gen.to_alcotest
      [ prop_reconvergence_defined; prop_block_partition ]
