(* CFG construction, dominance/post-dominance, and reconvergence
   points. *)

module Ast = Ptx.Ast
module B = Ptx.Builder

let diamond_kernel =
  (* if/else diamond with a shared join *)
  let b = B.create "diamond" in
  B.if_else b Ast.C_eq (Ast.Sreg Ast.Tid) (B.imm 0)
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 1))
    (fun b -> B.mov b (B.fresh_reg b) (B.imm 2));
  B.mov b (B.fresh_reg b) (B.imm 3);
  B.finish b

let loop_kernel =
  let b = B.create "loop" in
  let i = B.fresh_reg b in
  B.mov b i (B.imm 0);
  B.while_ b Ast.C_lt
    (fun _ -> (B.reg i, B.imm 4))
    (fun b -> B.binop b Ast.B_add i (B.reg i) (B.imm 1));
  B.finish b

let find_cond_branch g =
  let k = Cfg.Graph.kernel g in
  let found = ref (-1) in
  Array.iteri
    (fun i _ -> if !found < 0 && Cfg.Graph.is_conditional_branch g i then found := i)
    k.Ast.body;
  Alcotest.(check bool) "has a conditional branch" true (!found >= 0);
  !found

let test_diamond_blocks () =
  let g = Cfg.Graph.of_kernel diamond_kernel in
  (* entry, then, else, join = 4 blocks *)
  Alcotest.(check int) "block count" 4 (Array.length (Cfg.Graph.blocks g));
  let entry = (Cfg.Graph.blocks g).(0) in
  Alcotest.(check int) "entry has two successors" 2 (List.length entry.Cfg.Graph.succs)

let test_diamond_reconvergence () =
  let g = Cfg.Graph.of_kernel diamond_kernel in
  let pdoms = Cfg.Dominance.post_dominators g in
  let br = find_cond_branch g in
  let rb = Cfg.Dominance.reconvergence_block g pdoms br in
  (* the reconvergence block must contain the post-join mov (value 3) *)
  let blk = (Cfg.Graph.blocks g).(rb) in
  let has_join_mov = ref false in
  for i = blk.Cfg.Graph.first to blk.Cfg.Graph.last do
    match diamond_kernel.Ast.body.(i).Ast.kind with
    | Ast.Mov { src = Ast.Imm 3L; _ } -> has_join_mov := true
    | _ -> ()
  done;
  Alcotest.(check bool) "reconverges at the join" true !has_join_mov

let test_diamond_dominance () =
  let g = Cfg.Graph.of_kernel diamond_kernel in
  let doms = Cfg.Dominance.dominators g in
  Alcotest.(check bool) "entry dominates everything" true
    (Array.for_all
       (fun (b : Cfg.Graph.block) -> Cfg.Dominance.dominates doms 0 b.Cfg.Graph.id)
       (Cfg.Graph.blocks g));
  (* neither arm dominates the join *)
  let join =
    Cfg.Dominance.reconvergence_block g
      (Cfg.Dominance.post_dominators g)
      (find_cond_branch g)
  in
  Alcotest.(check bool) "then arm does not dominate join" false
    (Cfg.Dominance.dominates doms 1 join && Cfg.Dominance.dominates doms 2 join)

let test_loop_back_edge () =
  let g = Cfg.Graph.of_kernel loop_kernel in
  let pdoms = Cfg.Dominance.post_dominators g in
  let br = find_cond_branch g in
  let rb = Cfg.Dominance.reconvergence_block g pdoms br in
  (* the loop-exit branch reconverges after the loop *)
  let blk = (Cfg.Graph.blocks g).(rb) in
  Alcotest.(check bool) "reconvergence after branch" true
    (blk.Cfg.Graph.first > br)

let test_preds_consistent () =
  let g = Cfg.Graph.of_kernel loop_kernel in
  Array.iter
    (fun (b : Cfg.Graph.block) ->
      List.iter
        (fun s ->
          Alcotest.(check bool)
            (Printf.sprintf "B%d in preds of %d" b.Cfg.Graph.id s)
            true
            (List.mem b.Cfg.Graph.id (Cfg.Graph.preds g s)))
        b.Cfg.Graph.succs)
    (Cfg.Graph.blocks g)

let prop_reconvergence_defined =
  QCheck2.Test.make
    ~name:"every conditional branch of a generated kernel reconverges"
    ~count:150 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let g = Cfg.Graph.of_kernel k in
      let pdoms = Cfg.Dominance.post_dominators g in
      let ok = ref true in
      Array.iteri
        (fun i _ ->
          if Cfg.Graph.is_conditional_branch g i then
            match Cfg.Dominance.reconvergence_block g pdoms i with
            | _ -> ()
            | exception _ -> ok := false)
        k.Ast.body;
      !ok)

let prop_block_partition =
  QCheck2.Test.make ~name:"blocks partition the instruction array" ~count:150
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let g = Cfg.Graph.of_kernel k in
      let n = Array.length k.Ast.body in
      let covered = Array.make n 0 in
      Array.iter
        (fun (b : Cfg.Graph.block) ->
          for i = b.Cfg.Graph.first to b.Cfg.Graph.last do
            covered.(i) <- covered.(i) + 1
          done)
        (Cfg.Graph.blocks g);
      Array.for_all (Int.equal 1) covered)

(* ---- dominance on arbitrary digraphs ----------------------------- *)

(* Random digraphs, including irreducible and multi-exit shapes, checked
   against a brute-force oracle: [a] dominates [b] iff removing [a]
   makes [b] unreachable from the root.  The idom of a reachable
   non-root node must be one of its proper dominators and be dominated
   by every other proper dominator; unreachable nodes get none. *)

let gen_digraph =
  let open QCheck2.Gen in
  small_nat >>= fun seed ->
  int_range 1 10 >>= fun n ->
  let rng = Random.State.make [| 0xd1a6; seed; n |] in
  let edges = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if Random.State.int rng 3 = 0 then edges := (src, dst) :: !edges
    done
  done;
  return (n, List.rev !edges)

let print_digraph (n, edges) =
  Printf.sprintf "nodes=%d edges=[%s]" n
    (String.concat "; "
       (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) edges))

(* Nodes reachable from [root] without stepping on [skip]. *)
let reachable_avoiding n edges ~root ~skip =
  let seen = Array.make n false in
  let rec go v =
    if v <> skip && not seen.(v) then begin
      seen.(v) <- true;
      List.iter (fun (a, b) -> if a = v then go b) edges
    end
  in
  if root <> skip then go root;
  seen

let prop_dominance_oracle =
  QCheck2.Test.make ~name:"idom agrees with the brute-force dominance oracle"
    ~count:300 ~print:print_digraph gen_digraph (fun (n, edges) ->
      let succs v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
      let preds v = List.filter_map (fun (a, b) -> if b = v then Some a else None) edges in
      let t = Cfg.Dominance.compute ~nodes:n ~root:0 ~succs ~preds in
      let reach = reachable_avoiding n edges ~root:0 ~skip:(-1) in
      (* Oracle: a dominates b iff b is unreachable once a is removed. *)
      let dom a b =
        reach.(b) && (a = b || not (reachable_avoiding n edges ~root:0 ~skip:a).(b))
      in
      let ok = ref true in
      for b = 0 to n - 1 do
        (match Cfg.Dominance.idom t b with
        | None -> if reach.(b) && b <> 0 then ok := false
        | Some i ->
            if (not reach.(b)) || b = 0 then ok := false
            else begin
              (* The idom is a proper dominator... *)
              if i = b || not (dom i b) then ok := false;
              (* ...dominated by every other proper dominator of b. *)
              for d = 0 to n - 1 do
                if d <> b && dom d b && not (dom d i) then ok := false
              done
            end);
        (* [dominates] matches the oracle on reachable targets. *)
        if reach.(b) then
          for a = 0 to n - 1 do
            if Cfg.Dominance.dominates t a b <> dom a b then ok := false
          done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "diamond blocks" `Quick test_diamond_blocks;
    Alcotest.test_case "diamond reconvergence" `Quick test_diamond_reconvergence;
    Alcotest.test_case "diamond dominance" `Quick test_diamond_dominance;
    Alcotest.test_case "loop reconvergence" `Quick test_loop_back_edge;
    Alcotest.test_case "preds consistent with succs" `Quick test_preds_consistent;
  ]
  @ List.map Gen.to_alcotest
      [ prop_reconvergence_defined; prop_block_partition;
        prop_dominance_oracle ]
