(* The concurrent host (§4.3): one consumer domain per queue draining
   while the kernel runs.  Verdicts must match the sequential pipeline
   on every workload (witness pairs may differ: cross-queue ordering is
   nondeterministic, as in the deployed system). *)

module W = Workloads.Workload
module Pipeline = Gpu_runtime.Pipeline

let parallel_config queues =
  {
    Pipeline.default_config with
    queues;
    detector = { Barracuda.Detector.default_config with max_reports = 100000 };
  }

let run_parallel ?(queues = 2) (w : W.t) =
  let m = W.machine w in
  let args = w.W.setup m in
  Pipeline.run_parallel ~config:(parallel_config queues) ~machine:m w.W.kernel
    args

let check_verdict (w : W.t) () =
  let r = run_parallel w in
  Alcotest.(check bool) "completes" true
    (r.Pipeline.machine_result.Simt.Machine.status = Simt.Machine.Completed);
  let report = Pipeline.report r in
  let expected_racy = w.W.expected <> W.Race_free in
  Alcotest.(check bool) "verdict matches expectation" expected_racy
    (Barracuda.Report.has_race report)

let test_no_records_lost () =
  let w = Workloads.Registry.find "backprop" in
  let seq =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run ~config:(parallel_config 2) ~machine:m w.W.kernel args
  in
  let par = run_parallel w in
  Alcotest.(check int) "same record count as sequential"
    seq.Pipeline.queue_stats.Pipeline.records
    par.Pipeline.queue_stats.Pipeline.records

let test_single_queue_parallel () =
  (* with one queue, the one consumer sees the total order: exact
     agreement with the sequential pipeline *)
  let w = Workloads.Registry.find "pathfinder" in
  let seq =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run ~config:(parallel_config 1) ~machine:m w.W.kernel args
  in
  let par = run_parallel ~queues:1 w in
  let count r = Barracuda.Report.race_count (Pipeline.report r) in
  Alcotest.(check int) "identical race counts" (count seq) (count par)

let test_many_queues () =
  let w = Workloads.Registry.find "dxtc" in
  let r = run_parallel ~queues:4 w in
  let s, g = W.racy_word_counts (Pipeline.report r) in
  Alcotest.(check bool) "dxtc shared races found in parallel" true (s >= 90);
  Alcotest.(check int) "no global races" 0 g

let test_backpressure () =
  (* a queue far smaller than the record stream: the producer must hit
     the full queue (stalls > 0), and the push that filled it pins the
     high watermark at exactly the capacity — in both pipelines, with
     no records dropped *)
  let w = Workloads.Registry.find "backprop" in
  let capacity = 4 in
  let config = { (parallel_config 2) with Pipeline.queue_capacity = capacity } in
  let run_seq () =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run ~config ~machine:m w.W.kernel args
  in
  let run_par () =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run_parallel ~config ~machine:m w.W.kernel args
  in
  let seq = run_seq () in
  let par = run_par () in
  List.iter
    (fun (which, (r : Pipeline.result)) ->
      Alcotest.(check bool)
        (which ^ ": producer stalled on the tiny queue")
        true
        (r.Pipeline.queue_stats.Pipeline.stalls > 0);
      Alcotest.(check int)
        (which ^ ": high watermark is the capacity")
        capacity r.Pipeline.queue_stats.Pipeline.high_watermark)
    [ ("sequential", seq); ("parallel", par) ];
  Alcotest.(check int) "no records lost under backpressure"
    seq.Pipeline.queue_stats.Pipeline.records
    par.Pipeline.queue_stats.Pipeline.records

(* ---- full-bugsuite parity across all consumption paths ----------- *)

(* After the in-place transport refactor, every way of consuming the
   record stream must still agree with the reference semantics: the
   sequential pipeline and the parallel pipeline on each case's own
   setup, and the service daemon against a one-shot run of the same
   submission (the service resolves its own textual arg specs, so its
   baseline is a sequential run with identical resolved args). *)

module P = Service.Protocol

let reference_racy (c : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup m in
  let ops, _ =
    Gtrace.Infer.run ~layout:c.Bugsuite.Case.layout m c.Bugsuite.Case.kernel
      args
  in
  let d = Barracuda.Reference.create ~layout:c.Bugsuite.Case.layout () in
  Barracuda.Reference.run d ops;
  Barracuda.Report.has_race (Barracuda.Reference.report d)

let pipeline_racy ~parallel (c : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup m in
  let config =
    {
      Pipeline.default_config with
      (* the sequential drain has no cross-queue ordering (only the
         parallel consumers run the stamp protocol), so sequential
         parity uses the single totally-ordered queue while the
         parallel run exercises cross-queue acquires *)
      queues = (if parallel then 2 else 1);
      (* ship the full stream: pruning's precision trade-off is measured
         elsewhere, parity is about the transport *)
      prune = false;
      detector = { Barracuda.Detector.default_config with max_reports = 100000 };
    }
  in
  let r =
    if parallel then
      Pipeline.run_parallel ~config ~machine:m c.Bugsuite.Case.kernel args
    else Pipeline.run ~config ~machine:m c.Bugsuite.Case.kernel args
  in
  Barracuda.Report.has_race (Pipeline.report r)

let test_bugsuite_parity_all_paths () =
  List.iter
    (fun (c : Bugsuite.Case.t) ->
      let expected = reference_racy c in
      Alcotest.(check bool)
        (c.Bugsuite.Case.name ^ ": sequential pipeline matches reference")
        expected
        (pipeline_racy ~parallel:false c);
      Alcotest.(check bool)
        (c.Bugsuite.Case.name ^ ": parallel pipeline matches reference")
        expected
        (pipeline_racy ~parallel:true c))
    Bugsuite.Cases.all

let test_bugsuite_service_parity () =
  (* the service path: each case submitted to a live daemon must agree
     with a one-shot sequential run of the identical submission *)
  let socket_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "barracuda-par-%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let config =
    { Service.Server.default_config with socket_path; workers = 2 }
  in
  let t = Service.Server.start ~config () in
  Fun.protect
    ~finally:(fun () -> Service.Server.stop t)
    (fun () ->
      Alcotest.(check bool)
        "daemon ready" true
        (Service.Client.wait_ready ~socket:socket_path ());
      List.iter
        (fun (c : Bugsuite.Case.t) ->
          let source =
            Format.asprintf "%a" Ptx.Printer.pp_kernel c.Bugsuite.Case.kernel
          in
          let layout = c.Bugsuite.Case.layout in
          let args =
            List.map
              (fun _ -> "alloc:256")
              c.Bugsuite.Case.kernel.Ptx.Ast.params
          in
          let sub =
            {
              (P.submit_defaults ~kind:P.Check source) with
              P.layout =
                Some
                  ( layout.Vclock.Layout.blocks,
                    layout.Vclock.Layout.threads_per_block,
                    layout.Vclock.Layout.warp_size );
              args;
            }
          in
          let via_service =
            match Service.Client.submit ~retries:10 ~socket:socket_path sub with
            | Ok (P.Result { outcome; _ }) -> Some outcome.P.verdict
            | Ok (P.Failed { code = "timeout"; _ }) -> None
            | Ok r ->
                Alcotest.failf "case %s: unexpected reply %s"
                  c.Bugsuite.Case.name (P.encode_response r)
            | Result.Error e ->
                Alcotest.failf "case %s: transport: %s" c.Bugsuite.Case.name e
          in
          let oneshot =
            (* the same session-core path the service's serial jobs run *)
            let kernel = Ptx.Parser.kernel_of_string source in
            let machine = Simt.Machine.create ~layout () in
            let rargs = Service.Exec.resolve_args machine kernel args in
            let inst =
              Instrument.Pass.instrument ~prune:true ~static:true kernel
            in
            let result =
              Gpu_runtime.Session.run_stream
                ~max_steps:Service.Exec.default_config.Service.Exec.max_steps
                ~inst ~machine kernel rargs
            in
            match
              result.Gpu_runtime.Session.sr_machine_result.Simt.Machine.status
            with
            | Simt.Machine.Max_steps _ | Simt.Machine.Deadline _ -> None
            | Simt.Machine.Completed ->
                Some
                  (if
                     Barracuda.Report.has_race
                       result.Gpu_runtime.Session.sr_report
                   then P.Racy
                   else P.Race_free)
          in
          if via_service <> oneshot then
            Alcotest.failf "case %s: service and one-shot verdicts differ"
              c.Bugsuite.Case.name)
        Bugsuite.Cases.all)

(* a subset of workloads that exercises every interaction kind *)
let subset =
  [ "backprop"; "dwt2d"; "hybridsort"; "pathfinder"; "hashtable";
    "threadfencered"; "d_scan"; "d_reduce" ]

let suite =
  [
    Alcotest.test_case "no records lost" `Quick test_no_records_lost;
    Alcotest.test_case "single-queue parallel exact" `Quick
      test_single_queue_parallel;
    Alcotest.test_case "four queues" `Quick test_many_queues;
    Alcotest.test_case "backpressure on tiny queues" `Quick test_backpressure;
    Alcotest.test_case "bugsuite parity: sequential+parallel vs reference"
      `Quick test_bugsuite_parity_all_paths;
    Alcotest.test_case "bugsuite parity: service vs one-shot" `Quick
      test_bugsuite_service_parity;
  ]
  @ List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        Alcotest.test_case
          (Printf.sprintf "parallel verdict: %s" name)
          `Quick (check_verdict w))
      subset
