(* The concurrent host (§4.3): one consumer domain per queue draining
   while the kernel runs.  Verdicts must match the sequential pipeline
   on every workload (witness pairs may differ: cross-queue ordering is
   nondeterministic, as in the deployed system). *)

module W = Workloads.Workload
module Pipeline = Gpu_runtime.Pipeline

let parallel_config queues =
  {
    Pipeline.default_config with
    queues;
    detector = { Barracuda.Detector.default_config with max_reports = 100000 };
  }

let run_parallel ?(queues = 2) (w : W.t) =
  let m = W.machine w in
  let args = w.W.setup m in
  Pipeline.run_parallel ~config:(parallel_config queues) ~machine:m w.W.kernel
    args

let check_verdict (w : W.t) () =
  let r = run_parallel w in
  Alcotest.(check bool) "completes" true
    (r.Pipeline.machine_result.Simt.Machine.status = Simt.Machine.Completed);
  let report = Pipeline.report r in
  let expected_racy = w.W.expected <> W.Race_free in
  Alcotest.(check bool) "verdict matches expectation" expected_racy
    (Barracuda.Report.has_race report)

let test_no_records_lost () =
  let w = Workloads.Registry.find "backprop" in
  let seq =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run ~config:(parallel_config 2) ~machine:m w.W.kernel args
  in
  let par = run_parallel w in
  Alcotest.(check int) "same record count as sequential"
    seq.Pipeline.queue_stats.Pipeline.records
    par.Pipeline.queue_stats.Pipeline.records

let test_single_queue_parallel () =
  (* with one queue, the one consumer sees the total order: exact
     agreement with the sequential pipeline *)
  let w = Workloads.Registry.find "pathfinder" in
  let seq =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run ~config:(parallel_config 1) ~machine:m w.W.kernel args
  in
  let par = run_parallel ~queues:1 w in
  let count r = Barracuda.Report.race_count (Pipeline.report r) in
  Alcotest.(check int) "identical race counts" (count seq) (count par)

let test_many_queues () =
  let w = Workloads.Registry.find "dxtc" in
  let r = run_parallel ~queues:4 w in
  let s, g = W.racy_word_counts (Pipeline.report r) in
  Alcotest.(check bool) "dxtc shared races found in parallel" true (s >= 90);
  Alcotest.(check int) "no global races" 0 g

let test_backpressure () =
  (* a queue far smaller than the record stream: the producer must hit
     the full queue (stalls > 0), and the push that filled it pins the
     high watermark at exactly the capacity — in both pipelines, with
     no records dropped *)
  let w = Workloads.Registry.find "backprop" in
  let capacity = 4 in
  let config = { (parallel_config 2) with Pipeline.queue_capacity = capacity } in
  let run_seq () =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run ~config ~machine:m w.W.kernel args
  in
  let run_par () =
    let m = W.machine w in
    let args = w.W.setup m in
    Pipeline.run_parallel ~config ~machine:m w.W.kernel args
  in
  let seq = run_seq () in
  let par = run_par () in
  List.iter
    (fun (which, (r : Pipeline.result)) ->
      Alcotest.(check bool)
        (which ^ ": producer stalled on the tiny queue")
        true
        (r.Pipeline.queue_stats.Pipeline.stalls > 0);
      Alcotest.(check int)
        (which ^ ": high watermark is the capacity")
        capacity r.Pipeline.queue_stats.Pipeline.high_watermark)
    [ ("sequential", seq); ("parallel", par) ];
  Alcotest.(check int) "no records lost under backpressure"
    seq.Pipeline.queue_stats.Pipeline.records
    par.Pipeline.queue_stats.Pipeline.records

(* a subset of workloads that exercises every interaction kind *)
let subset =
  [ "backprop"; "dwt2d"; "hybridsort"; "pathfinder"; "hashtable";
    "threadfencered"; "d_scan"; "d_reduce" ]

let suite =
  [
    Alcotest.test_case "no records lost" `Quick test_no_records_lost;
    Alcotest.test_case "single-queue parallel exact" `Quick
      test_single_queue_parallel;
    Alcotest.test_case "four queues" `Quick test_many_queues;
    Alcotest.test_case "backpressure on tiny queues" `Quick test_backpressure;
  ]
  @ List.map
      (fun name ->
        let w = Workloads.Registry.find name in
        Alcotest.test_case
          (Printf.sprintf "parallel verdict: %s" name)
          `Quick (check_verdict w))
      subset
