(* The streaming-session core (lib/runtime/session + lib/runtime/stream):
   the load-bearing claim is chunk invariance — feeding a recorded wire
   stream through a session in ANY chunking (1-byte, mid-record,
   straddling barrier epochs) yields bitwise the batch race set, on the
   serial backend and on the sharded one.  Plus the stream file codec,
   the op-plane lifecycle, and the scheduler's session seats. *)

module Report = Barracuda.Report
module Session = Gpu_runtime.Session
module Stream = Gpu_runtime.Stream

(* ---- race-set extraction (as in test_shard) ---------------------- *)

type race_key = {
  loc : Gtrace.Loc.t;
  prev_tid : int;
  prev_kind : Report.access_kind;
  cur_tid : int;
  cur_kind : Report.access_kind;
}

let race_set_of_errors errors =
  errors
  |> List.filter_map (function
       | Report.Race r ->
           Some
             {
               loc = r.Report.loc;
               prev_tid = r.Report.prev_tid;
               prev_kind = r.Report.prev_kind;
               cur_tid = r.Report.cur_tid;
               cur_kind = r.Report.cur_kind;
             }
       | Report.Barrier_divergence _ -> None)
  |> List.sort_uniq Stdlib.compare

let race_set report = race_set_of_errors (Report.errors report)

(* Parity needs the full stream with no report cap in the way. *)
let detector_config =
  { Barracuda.Detector.default_config with max_reports = 100000 }

(* ---- recording a one-shot run ------------------------------------ *)

(* One-shot through the session core, capturing the stream: the
   recording IS the batch feed, so replaying it chunked isolates the
   chunking as the only variable. *)
let oneshot ~layout kernel args_of_machine =
  let machine = Simt.Machine.create ~layout () in
  let args = args_of_machine machine in
  let buf = Buffer.create 4096 in
  let r =
    Session.run_stream ~detector:detector_config ~capture:buf ~machine kernel
      args
  in
  (race_set r.Session.sr_report, r.Session.sr_records, Buffer.contents buf)

(* Replay [bytes] through a streaming session, cutting chunks by the
   (cyclic, positive) sizes in [cuts], checkpointing every
   [checkpoint_every] chunks.  [shards = 0] is the serial backend. *)
let streamed ~layout ~shards ~cuts ~checkpoint_every kernel bytes =
  let sink =
    if shards = 0 then None
    else
      Some
        (Shard.Stream.sink ~config:detector_config ~layout ~shards kernel)
  in
  let st = Session.open_stream ?sink ~detector:detector_config ~layout kernel in
  match
    let total = String.length bytes in
    let ncuts = Array.length cuts in
    let pos = ref 0 and i = ref 0 in
    while !pos < total do
      let len = min cuts.(!i mod ncuts) (total - !pos) in
      Session.feed_chunk st ~pos:!pos ~len bytes;
      pos := !pos + len;
      incr i;
      if checkpoint_every > 0 && !i mod checkpoint_every = 0 then
        ignore (Session.checkpoint st)
    done;
    Session.close_stream st
  with
  | p -> (race_set_of_errors p.Session.p_errors, p.Session.p_records)
  | exception e ->
      Session.abort_stream st;
      raise e

(* ---- QCheck: chunk invariance ------------------------------------ *)

let gen_chunking =
  QCheck2.Gen.(
    (* sizes deliberately straddle every interesting boundary: single
       bytes, sub-record, exactly a record, and multi-cell *)
    let* cuts =
      array_size (int_range 1 24)
        (oneof
           [
             int_range 1 8;
             int_range (Barracuda.Wire.size - 4) (Barracuda.Wire.size + 4);
             int_range 1 (2 * Stream.max_cell_size);
           ])
    in
    let* checkpoint_every = int_range 0 5 in
    return (cuts, checkpoint_every))

let gen_case = QCheck2.Gen.pair Gen.gen_program gen_chunking

let print_case (prog, (cuts, ce)) =
  Printf.sprintf "program:\n%s\ncuts=[%s] checkpoint_every=%d"
    (Gen.print_program prog)
    (String.concat ";" (Array.to_list (Array.map string_of_int cuts)))
    ce

let prop_chunk_invariance =
  QCheck2.Test.make
    ~name:
      "any chunking of a recorded stream reproduces the batch race set \
       (serial and 4 shards)"
    ~count:60 ~print:print_case gen_case
    (fun (prog, (cuts, checkpoint_every)) ->
      let kernel = Gen.kernel_of_program prog in
      let layout = Gen.layout in
      let expected, records, bytes = oneshot ~layout kernel Gen.setup in
      let serial =
        streamed ~layout ~shards:0 ~cuts ~checkpoint_every kernel bytes
      in
      let sharded =
        streamed ~layout ~shards:4 ~cuts ~checkpoint_every kernel bytes
      in
      if serial <> (expected, records) then
        QCheck2.Test.fail_reportf
          "serial stream diverged: %d races / %d records, one-shot %d / %d"
          (List.length (fst serial))
          (snd serial) (List.length expected) records;
      if sharded <> (expected, records) then
        QCheck2.Test.fail_reportf
          "4-shard stream diverged: %d races / %d records, one-shot %d / %d"
          (List.length (fst sharded))
          (snd sharded) (List.length expected) records;
      true)

(* ---- fixed awkward chunkings over a real racy case --------------- *)

let test_awkward_chunk_sizes () =
  let c =
    List.find
      (fun (c : Bugsuite.Case.t) -> c.Bugsuite.Case.verdict <> Bugsuite.Case.Race_free)
      Bugsuite.Cases.all
  in
  let layout = c.Bugsuite.Case.layout in
  let kernel = c.Bugsuite.Case.kernel in
  let expected, records, bytes =
    oneshot ~layout kernel c.Bugsuite.Case.setup
  in
  Alcotest.(check bool) "the case actually races" true (expected <> []);
  List.iter
    (fun size ->
      List.iter
        (fun shards ->
          let got =
            streamed ~layout ~shards ~cuts:[| size |] ~checkpoint_every:3
              kernel bytes
          in
          if got <> (expected, records) then
            Alcotest.failf "chunk=%d shards=%d: diverged from one-shot" size
              shards)
        [ 0; 4 ])
    [ 1; 7; Barracuda.Wire.size - 1; Barracuda.Wire.size;
      Stream.max_cell_size + 1 ]

(* ---- full-bugsuite streaming parity ------------------------------ *)

let test_bugsuite_streaming_parity () =
  List.iter
    (fun (c : Bugsuite.Case.t) ->
      let layout = c.Bugsuite.Case.layout in
      let kernel = c.Bugsuite.Case.kernel in
      let expected, records, bytes =
        oneshot ~layout kernel c.Bugsuite.Case.setup
      in
      List.iter
        (fun shards ->
          let got =
            streamed ~layout ~shards ~cuts:[| 997 |] ~checkpoint_every:4
              kernel bytes
          in
          if got <> (expected, records) then
            Alcotest.failf "%s @ %d shards: streamed race set differs"
              c.Bugsuite.Case.name shards)
        [ 0; 4 ])
    Bugsuite.Cases.all

(* ---- integrity: corruption is absorbed and surfaced -------------- *)

let test_corrupt_record_counted () =
  let c = List.hd Bugsuite.Cases.all in
  let layout = c.Bugsuite.Case.layout in
  let kernel = c.Bugsuite.Case.kernel in
  let _, records, bytes = oneshot ~layout kernel c.Bugsuite.Case.setup in
  Alcotest.(check bool) "have records" true (records > 1);
  (* flip a checksum-covered header byte of the first cell's record *)
  let b = Bytes.of_string bytes in
  Bytes.set b 12 (Char.chr (Char.code (Bytes.get b 12) lxor 0xff));
  let st = Session.open_stream ~detector:detector_config ~layout kernel in
  Session.feed_chunk st (Bytes.to_string b);
  let p = Session.close_stream st in
  Alcotest.(check bool) "degraded" true p.Session.p_degraded;
  Alcotest.(check int) "one corrupt record skipped" 1
    p.Session.p_integrity.Report.corrupt;
  Alcotest.(check int) "the rest made it" (records - 1) p.Session.p_records

let test_framing_is_loud () =
  let c = List.hd Bugsuite.Cases.all in
  let layout = c.Bugsuite.Case.layout in
  let kernel = c.Bugsuite.Case.kernel in
  let _, _, bytes = oneshot ~layout kernel c.Bugsuite.Case.setup in
  (* an impossible value count desynchronizes cell boundaries: loud *)
  let b = Bytes.of_string bytes in
  Bytes.set_uint16_le b Barracuda.Wire.size 0xffff;
  let st = Session.open_stream ~detector:detector_config ~layout kernel in
  (match Session.feed_chunk st (Bytes.to_string b) with
  | () -> Alcotest.fail "expected Stream.Framing"
  | exception Stream.Framing _ -> ());
  Session.abort_stream st

(* ---- recorded stream files --------------------------------------- *)

let test_stream_file_roundtrip () =
  let c = List.hd Bugsuite.Cases.all in
  let layout = c.Bugsuite.Case.layout in
  let kernel = c.Bugsuite.Case.kernel in
  let expected, records, bytes = oneshot ~layout kernel c.Bugsuite.Case.setup in
  let path = Filename.temp_file "barracuda-stream" ".baws" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let buf = Buffer.create (String.length bytes) in
      Buffer.add_string buf bytes;
      Stream.write_file path ~layout buf;
      let layout', cells = Stream.read_file path in
      Alcotest.(check bool) "layout survives the header" true (layout' = layout);
      Alcotest.(check int) "cell bytes survive" (String.length bytes)
        (String.length cells);
      let got =
        streamed ~layout:layout' ~shards:0 ~cuts:[| 512 |] ~checkpoint_every:0
          kernel cells
      in
      Alcotest.(check bool) "replay matches the recording run" true
        (got = (expected, records)))

let test_bad_header_rejected () =
  match Stream.decode_header (String.make Stream.header_size '\x00') with
  | _ -> Alcotest.fail "expected Stream.Framing"
  | exception Stream.Framing _ -> ()

(* ---- op-plane lifecycle ------------------------------------------ *)

let test_ops_lifecycle () =
  let layout = Gen.layout in
  let s = Session.open_ops ~layout () in
  let loc = Gtrace.Loc.global 0x100 in
  Session.feed_ops s
    [
      Gtrace.Op.Wr { tid = 0; loc; value = 1L };
      Gtrace.Op.Endi { warp = 0; mask = 1 };
    ];
  Alcotest.(check bool) "no race yet" false
    (Report.has_race (Session.ops_report s));
  Session.feed_ops s
    [
      Gtrace.Op.Wr { tid = 9; loc; value = 2L };
      Gtrace.Op.Endi { warp = 2; mask = 2 };
    ];
  Alcotest.(check bool) "verdict-so-far sees the race" true
    (Report.has_race (Session.ops_report s));
  Alcotest.(check int) "ops counted" 4 (Session.ops_fed s);
  let final = Session.close_ops s in
  Alcotest.(check bool) "final verdict" true (Report.has_race final);
  match Session.feed_op s (Gtrace.Op.Endi { warp = 0; mask = 1 }) with
  | () -> Alcotest.fail "feed after close must raise"
  | exception Invalid_argument _ -> ()

(* ---- scheduler session seats ------------------------------------- *)

let scheduler_config =
  {
    Service.Scheduler.default_config with
    Service.Scheduler.workers = 2;
    session_seats = 2;
  }

let idle_exec ~job:_ _sub = Service.Protocol.Error "unused"

let test_seats_bounded () =
  let t = Service.Scheduler.create ~config:scheduler_config ~exec:idle_exec () in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.stop t)
    (fun () ->
      match
        ( Service.Scheduler.session_open t,
          Service.Scheduler.session_open t,
          Service.Scheduler.session_open t )
      with
      | Some a, Some b, None ->
          Alcotest.(check int) "both seats open" 2
            (Service.Scheduler.open_sessions t);
          (* session compute really runs on the seat's own domain *)
          let here = (Domain.self () :> int) in
          let seat_dom =
            Service.Scheduler.session_call a (fun () ->
                (Domain.self () :> int))
          in
          Alcotest.(check bool) "call ran on the seat domain" true
            (seat_dom <> here);
          (* exceptions cross the rendezvous *)
          (match
             Service.Scheduler.session_call b (fun () -> failwith "boom")
           with
          | _ -> Alcotest.fail "expected the closure's exception"
          | exception Failure m -> Alcotest.(check string) "verbatim" "boom" m);
          Service.Scheduler.session_close t a;
          Alcotest.(check bool) "freed seat is reusable" true
            (Service.Scheduler.session_open t <> None);
          Alcotest.(check int) "opened total counts every claim" 3
            (Service.Scheduler.sessions_opened t)
      | _ -> Alcotest.fail "expected exactly 2 seats")

(* Satellite: stop must zero EVERY scheduler-owned gauge — busy-worker
   and session gauges included, not just queue depth. *)
let test_stop_zeroes_all_gauges () =
  let was_enabled = Telemetry.Registry.enabled () in
  Telemetry.Registry.set_enabled true;
  Telemetry.Registry.reset Telemetry.Registry.default;
  Fun.protect ~finally:(fun () -> Telemetry.Registry.set_enabled was_enabled)
  @@ fun () ->
  let slow ~job:_ _sub =
    Unix.sleepf 0.05;
    Service.Protocol.Error "unused"
  in
  let t = Service.Scheduler.create ~config:scheduler_config ~exec:slow () in
  (* make every gauge nonzero: busy workers, queue depth, open session *)
  let sub = Service.Protocol.submit_defaults ~kind:Service.Protocol.Check "" in
  for _ = 1 to 6 do
    Service.Scheduler.submit t sub ~reply:(fun _ -> ())
  done;
  (match Service.Scheduler.session_open t with
  | Some _ -> ()
  | None -> Alcotest.fail "no free seat");
  Alcotest.(check bool) "a session is open" true
    (Telemetry.Registry.find_gauge Telemetry.Registry.default
       "barracuda_service_open_sessions"
    > 0);
  (* stop without closing the session: the gauges must still be
     pinned to zero afterwards *)
  Service.Scheduler.stop t;
  List.iter
    (fun name ->
      Alcotest.(check int) (name ^ " zero after stop") 0
        (Telemetry.Registry.find_gauge Telemetry.Registry.default name))
    [
      "barracuda_service_queue_depth";
      "barracuda_service_busy_workers";
      "barracuda_service_open_sessions";
    ]

let suite =
  [
    Gen.to_alcotest prop_chunk_invariance;
    Alcotest.test_case "awkward chunk sizes, serial and sharded" `Quick
      test_awkward_chunk_sizes;
    Alcotest.test_case "bugsuite streaming parity (serial + 4 shards)" `Quick
      test_bugsuite_streaming_parity;
    Alcotest.test_case "corrupt record absorbed and counted" `Quick
      test_corrupt_record_counted;
    Alcotest.test_case "framing corruption raises" `Quick test_framing_is_loud;
    Alcotest.test_case "stream file round-trip" `Quick
      test_stream_file_roundtrip;
    Alcotest.test_case "bad stream header rejected" `Quick
      test_bad_header_rejected;
    Alcotest.test_case "op-plane lifecycle" `Quick test_ops_lifecycle;
    Alcotest.test_case "session seats are bounded and reusable" `Quick
      test_seats_bounded;
    Alcotest.test_case "stop zeroes every scheduler gauge" `Quick
      test_stop_zeroes_all_gauges;
  ]
