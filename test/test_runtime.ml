(* Runtime layer: record wire format, lock-free queues (including under
   domains), and the end-to-end pipeline vs direct detection. *)

module Record = Gpu_runtime.Record
module Queue = Gpu_runtime.Queue
module Pipeline = Gpu_runtime.Pipeline
module Report = Barracuda.Report

let ws = 32

(* ---- Records -------------------------------------------------------- *)

let sample_records =
  [
    Record.of_event ~warp_size:ws
      (Simt.Event.Access
         {
           warp = 3;
           insn = 17;
           kind = Simt.Event.Store;
           space = Ptx.Ast.Shared;
           mask = 0xDEAD;
           addrs = Array.init ws (fun i -> i * 8);
           values = Array.init ws (fun i -> Int64.of_int i);
           width = 4;
         });
    Record.of_event ~warp_size:ws
      (Simt.Event.Access
         {
           warp = 1;
           insn = 2;
           kind = Simt.Event.Atomic Ptx.Ast.A_cas;
           space = Ptx.Ast.Global;
           mask = 0x1;
           addrs = Array.make ws 0;
           values = Array.make ws 0L;
           width = 8;
         });
    Record.of_event ~warp_size:ws
      (Simt.Event.Branch_if { warp = 0; insn = 5; then_mask = 0xF0; else_mask = 0xF });
    Record.of_event ~warp_size:ws (Simt.Event.Branch_else { warp = 2; mask = 0x3 });
    Record.of_event ~warp_size:ws (Simt.Event.Branch_fi { warp = 2; mask = 0xFF });
    Record.of_event ~warp_size:ws (Simt.Event.Barrier { block = 7 });
    Record.of_event ~warp_size:ws
      (Simt.Event.Barrier_divergence { warp = 4; insn = 9; mask = 0x1; expected = 0xF });
  ]

let test_record_wire_size () =
  (* the paper's 272-byte layout plus the 8-byte integrity prefix *)
  Alcotest.(check int) "wire size" 280 Record.wire_size;
  List.iter
    (fun r ->
      match r with
      | Some r ->
          Alcotest.(check int) "serialized size" 280
            (Bytes.length (Record.to_bytes r))
      | None -> Alcotest.fail "event should produce a record")
    sample_records

let test_record_roundtrip () =
  List.iter
    (fun r ->
      match r with
      | Some r ->
          let r' =
            Record.of_bytes ~values:r.Record.values ~warp_size:ws
              (Record.to_bytes r)
          in
          Alcotest.(check bool) "roundtrip" true (r = r')
      | None -> Alcotest.fail "expected a record")
    sample_records

let test_record_fence_elided () =
  Alcotest.(check bool) "fences produce no record" true
    (Record.of_event ~warp_size:ws
       (Simt.Event.Fence { warp = 0; insn = 1; scope = Ptx.Ast.Gl; mask = 1 })
    = None)

let test_record_event_roundtrip () =
  List.iter
    (fun r ->
      match r with
      | Some r ->
          let ev = Record.to_event r in
          let r2 = Record.of_event ~warp_size:ws ev in
          Alcotest.(check bool) "event roundtrip" true (Some r = r2)
      | None -> ())
    sample_records

(* ---- Record.View vs decode ---------------------------------------- *)

(* Arbitrary records (not just ones reachable from events), serialized
   at a non-zero offset inside a larger dirty buffer: every [View]
   accessor must agree field-for-field with the decoded record. *)
let gen_record =
  QCheck2.Gen.(
    let gen_kind =
      oneofl
        [
          Simt.Event.Load;
          Simt.Event.Store;
          Simt.Event.Atomic Ptx.Ast.A_add;
          Simt.Event.Atomic Ptx.Ast.A_cas;
          Simt.Event.Atomic Ptx.Ast.A_dec;
        ]
    in
    let gen_space = oneofl [ Ptx.Ast.Global; Ptx.Ast.Shared ] in
    let gen_mask = int_range 0 0xFFFF in
    let gen_warp = oneof [ return (-1); int_range 0 4096 ] in
    let gen_insn = oneof [ return (-1); int_range 0 100_000 ] in
    let gen_addrs =
      array_size (return ws) (int_range 0 0x3FFF_FFFF)
    in
    let mk warp insn op mask addrs =
      { Record.warp; insn; op; mask; addrs; values = [||] }
    in
    let gen_op =
      oneof
        [
          map3
            (fun kind space width -> Record.Access { kind; space; width })
            gen_kind gen_space (oneofl [ 1; 2; 4; 8 ]);
          map2
            (fun t e -> Record.Branch_if { then_mask = t; else_mask = e })
            gen_mask gen_mask;
          return Record.Branch_else;
          return Record.Branch_fi;
          map (fun b -> Record.Barrier { block = b }) (int_range 0 0xFFFF);
          map
            (fun e -> Record.Barrier_divergence { expected = e })
            (int_range 0 0xFFFF);
        ]
    in
    map
      (fun ((warp, insn, op), (mask, addrs)) ->
        mk warp insn op mask addrs)
      (pair (triple gen_warp gen_insn gen_op) (pair gen_mask gen_addrs)))

let print_record r = Format.asprintf "%a" Record.pp r

let prop_view_matches_decode =
  QCheck2.Test.make
    ~name:"Record.View accessors agree with Record.of_bytes" ~count:500
    ~print:print_record gen_record (fun r ->
      let img = Record.to_bytes r in
      let pos = Record.wire_size in
      let buf = Bytes.make (3 * Record.wire_size) '\xAB' in
      Bytes.blit img 0 buf pos Record.wire_size;
      let d = Record.of_bytes ~warp_size:ws img in
      let module V = Record.View in
      V.warp buf ~pos = d.Record.warp
      && V.insn buf ~pos = d.Record.insn
      && V.mask buf ~pos = d.Record.mask
      &&
      match d.Record.op with
      | Record.Access { kind; space; width } ->
          V.opcode buf ~pos = Barracuda.Wire.opcode_of_kind kind
          && Barracuda.Wire.space_of_code (V.aux buf ~pos) = space
          && V.width buf ~pos = width
          && Array.for_all
               (fun lane -> V.addr buf ~pos ~lane = d.Record.addrs.(lane))
               (Array.init (min ws Barracuda.Wire.max_lanes) Fun.id)
      | Record.Branch_if { then_mask; else_mask } ->
          V.opcode buf ~pos = Barracuda.Wire.op_branch_if
          && V.then_mask buf ~pos = then_mask
          && V.else_mask buf ~pos = else_mask
      | Record.Branch_else -> V.opcode buf ~pos = Barracuda.Wire.op_branch_else
      | Record.Branch_fi -> V.opcode buf ~pos = Barracuda.Wire.op_branch_fi
      | Record.Barrier { block } ->
          V.opcode buf ~pos = Barracuda.Wire.op_barrier
          && V.aux buf ~pos = block
      | Record.Barrier_divergence { expected } ->
          V.opcode buf ~pos = Barracuda.Wire.op_barrier_divergence
          && V.aux buf ~pos = expected)

(* ---- Queue ----------------------------------------------------------- *)

(* Fill a ring slot with a minimal load record whose warp field carries
   the sequence number [i] (queue tests read it back via the view). *)
let fill_payload i buf off =
  Bytes.fill buf off Record.wire_size '\000';
  Bytes.set_uint8 buf off Barracuda.Wire.magic;
  Bytes.set_uint8 buf (off + 1) Barracuda.Wire.version;
  Bytes.set_uint8 buf (off + 2) Barracuda.Wire.op_load;
  Bytes.set_uint16_le buf (off + 12) (i land 0xFFFF);
  Bytes.set_uint16_le buf (off + 14) ((i lsr 16) land 0xFFFF)

let seq_of buf off = Record.View.warp buf ~pos:off

let test_queue_fifo () =
  let q = Queue.create ~capacity:8 in
  for i = 0 to 5 do
    Alcotest.(check bool) "push" true (Queue.push_into q (fill_payload i))
  done;
  Alcotest.(check int) "length" 6 (Queue.length q);
  for i = 0 to 5 do
    match Queue.consume q seq_of with
    | Some v -> Alcotest.(check int) (Printf.sprintf "fifo %d" i) i v
    | None -> Alcotest.fail "consume failed"
  done;
  Alcotest.(check bool) "empty" true (Queue.consume q seq_of = None)

let test_queue_full () =
  let q = Queue.create ~capacity:4 in
  for i = 0 to 3 do
    Alcotest.(check bool) "fills" true (Queue.push_into q (fill_payload i))
  done;
  Alcotest.(check bool) "rejects when full" false
    (Queue.push_into q (fill_payload 4));
  ignore (Queue.consume q seq_of);
  Alcotest.(check bool) "space after release" true
    (Queue.push_into q (fill_payload 4));
  Alcotest.(check int) "wraparound accounting" 5 (Queue.pushed q);
  Alcotest.(check int) "high watermark" 4 (Queue.high_watermark q)

let test_queue_inplace_protocol () =
  (* raw reserve/commit/peek/release: the slot peeked is stable until
     released, and offsets wrap around the flat ring *)
  let q = Queue.create ~capacity:2 in
  let w0 = Queue.try_reserve q in
  Alcotest.(check int) "first reservation" 0 w0;
  Alcotest.(check int) "peek before commit" (-1) (Queue.peek q);
  fill_payload 7 (Queue.buffer q) (Queue.offset_of q w0);
  Queue.commit q w0;
  let off = Queue.peek q in
  Alcotest.(check int) "slot offset" (Queue.offset_of q w0) off;
  Alcotest.(check int) "peek is stable" off (Queue.peek q);
  Alcotest.(check int) "payload in place" 7 (seq_of (Queue.buffer q) off);
  Queue.release q;
  Alcotest.(check int) "empty after release" (-1) (Queue.peek q);
  (* wraparound: virtual index 2 lands on slot 0 *)
  ignore (Queue.push_into q (fill_payload 1));
  ignore (Queue.consume q seq_of);
  let w2 = Queue.try_reserve q in
  Alcotest.(check int) "third reservation" 2 w2;
  Alcotest.(check int) "wraps to slot 0" 0 (Queue.offset_of q w2);
  Queue.commit q w2

let test_queue_domains () =
  (* one producer domain, one consumer domain, 10k records *)
  let q = Queue.create ~capacity:64 in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Queue.push_into q (fill_payload i)) do
            Domain.cpu_relax ()
          done
        done)
  in
  let seen = ref 0 in
  let in_order = ref true in
  while !seen < n do
    match Queue.consume q seq_of with
    | Some v ->
        if v <> !seen then in_order := false;
        incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "all records in order across domains" true !in_order

(* ---- Steady-state allocation ---------------------------------------- *)

let test_steady_state_allocation () =
  (* The record hot path — serialize into a ring slot, commit, feed the
     detector in place, release — must not allocate in steady state on
     a converged workload.  Bound: < 8 minor-heap words per record
     (zero in practice; the slack absorbs incidental boxing if the
     compiler changes). *)
  Telemetry.Registry.set_enabled false;
  let layout = Gen.layout in
  let wsz = layout.Vclock.Layout.warp_size in
  let k = Gen.kernel_of_program [ Gen.Global_store (0, Gen.Const 1) ] in
  let det = Barracuda.Detector.create ~layout k in
  let q = Queue.create ~capacity:64 in
  let buf = Queue.buffer q in
  let addrs = Array.init wsz (fun i -> 4 * i) in
  let values = Array.make wsz 1L in
  let mask = (1 lsl wsz) - 1 in
  let pump n =
    for _ = 1 to n do
      let w = Queue.try_reserve q in
      let pos = Queue.offset_of q w in
      Barracuda.Wire.write_access buf ~pos ~kind:Simt.Event.Store
        ~space:Ptx.Ast.Global ~width:4 ~mask ~warp:0 ~insn:0 ~addrs;
      Barracuda.Wire.seal buf ~pos ~seq:w;
      Queue.commit q w;
      let off = Queue.peek q in
      Barracuda.Detector.feed_record det ~values buf ~pos:off;
      Queue.release q
    done
  in
  pump 512 (* warm up: shadow pages, table growth, lazy telemetry handles *);
  let n = 20_000 in
  let before = Gc.minor_words () in
  pump n;
  let after = Gc.minor_words () in
  let per_record = (after -. before) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state allocation (%.2f words/record) < 8"
       per_record)
    true
    (per_record < 8.0)

(* ---- Pipeline -------------------------------------------------------- *)

let race_fingerprint report =
  Report.errors report
  |> List.filter_map (function
       | Report.Race r ->
           Some (r.Report.loc, r.Report.prev_tid, r.Report.cur_tid)
       | Report.Barrier_divergence _ -> None)
  |> List.sort_uniq Stdlib.compare

let single_queue_config =
  {
    Pipeline.default_config with
    queues = 1;
    detector = { Barracuda.Detector.default_config with max_reports = 100000 };
  }

(* The queue transport must be transparent: a detector fed the exact
   event stream the pipeline forwards must agree with the detector fed
   through records and a single queue.  (Comparing against a separate
   native run would be too strong: instrumentation changes warp
   interleaving, and FastTrack-style detection is schedule-sensitive.) *)
let prop_pipeline_matches_teed_detector =
  QCheck2.Test.make
    ~name:"single-queue pipeline equals a detector fed the same events"
    ~count:150 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let m = Simt.Machine.create ~layout:Gen.layout () in
      let args = Gen.setup m in
      let config =
        { Barracuda.Detector.default_config with max_reports = 100000 }
      in
      let direct = Barracuda.Detector.create ~config ~layout:Gen.layout k in
      let pr =
        Pipeline.run
          ~config:{ single_queue_config with prune = false }
          ~tee:(Barracuda.Detector.feed direct) ~machine:m k args
      in
      race_fingerprint (Barracuda.Detector.report direct)
      = race_fingerprint (Pipeline.report pr))

(* Weaker cross-run property that survives schedule perturbation: a
   race-free program stays race-free through the full pipeline. *)
let prop_pipeline_no_false_positives =
  QCheck2.Test.make
    ~name:"pipeline never invents races on programs the detector clears"
    ~count:100 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let m1 = Simt.Machine.create ~layout:Gen.layout () in
      let args1 = Gen.setup m1 in
      let det, _ = Barracuda.Detector.run ~machine:m1 k args1 in
      if Report.has_race (Barracuda.Detector.report det) then
        QCheck2.assume_fail ()
      else begin
        let m2 = Simt.Machine.create ~layout:Gen.layout () in
        let args2 = Gen.setup m2 in
        let pr = Pipeline.run ~config:single_queue_config ~machine:m2 k args2 in
        not (Report.has_race (Pipeline.report pr))
      end)

let test_pipeline_backpressure () =
  (* a tiny queue forces producer stalls but must not lose records *)
  let prog = [ Gen.Global_store (0, Gen.Lane_dependent); Gen.Global_load 0 ] in
  let k = Gen.kernel_of_program prog in
  let m = Simt.Machine.create ~layout:Gen.layout () in
  let args = Gen.setup m in
  let r =
    Pipeline.run
      ~config:{ single_queue_config with queue_capacity = 2 }
      ~machine:m k args
  in
  Alcotest.(check bool) "records flowed" true
    (r.Pipeline.queue_stats.Pipeline.records > 0);
  Alcotest.(check bool) "race still found" true
    (Report.has_race (Pipeline.report r))

let test_pipeline_instrumented_execution_correct () =
  (* the instrumented kernel must compute the same results *)
  let prog = [ Gen.Store_own_slot ] in
  let k = Gen.kernel_of_program prog in
  let m1 = Simt.Machine.create ~layout:Gen.layout () in
  let args1 = Gen.setup m1 in
  let _ = Simt.Machine.launch m1 k args1 in
  let m2 = Simt.Machine.create ~layout:Gen.layout () in
  let args2 = Gen.setup m2 in
  let _ = Pipeline.run ~machine:m2 k args2 in
  let base1 = Int64.to_int args1.(0) and base2 = Int64.to_int args2.(0) in
  let total = Vclock.Layout.total_threads Gen.layout in
  let own_base = 4 * (Gen.words + Gen.sync_words) in
  for t = 0 to total - 1 do
    let addr1 = base1 + own_base + (4 * t) in
    let addr2 = base2 + own_base + (4 * t) in
    Alcotest.(check int64)
      (Printf.sprintf "slot %d" t)
      (Simt.Machine.peek m1 ~addr:addr1 ~width:4)
      (Simt.Machine.peek m2 ~addr:addr2 ~width:4)
  done

let suite =
  [
    Alcotest.test_case "record wire size" `Quick test_record_wire_size;
    Alcotest.test_case "record bytes roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "record fence elided" `Quick test_record_fence_elided;
    Alcotest.test_case "record event roundtrip" `Quick test_record_event_roundtrip;
    Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
    Alcotest.test_case "queue full/wrap" `Quick test_queue_full;
    Alcotest.test_case "queue in-place protocol" `Quick
      test_queue_inplace_protocol;
    Alcotest.test_case "queue across domains" `Quick test_queue_domains;
    Alcotest.test_case "steady-state allocation bound" `Quick
      test_steady_state_allocation;
    Alcotest.test_case "pipeline backpressure" `Quick test_pipeline_backpressure;
    Alcotest.test_case "pipeline preserves results" `Quick
      test_pipeline_instrumented_execution_correct;
  ]
  @ List.map Gen.to_alcotest
      [
        prop_view_matches_decode;
        prop_pipeline_matches_teed_detector;
        prop_pipeline_no_false_positives;
      ]
