(* Runtime layer: record wire format, lock-free queues (including under
   domains), and the end-to-end pipeline vs direct detection. *)

module Record = Gpu_runtime.Record
module Queue = Gpu_runtime.Queue
module Pipeline = Gpu_runtime.Pipeline
module Report = Barracuda.Report

let ws = 32

(* ---- Records -------------------------------------------------------- *)

let sample_records =
  [
    Record.of_event ~warp_size:ws
      (Simt.Event.Access
         {
           warp = 3;
           insn = 17;
           kind = Simt.Event.Store;
           space = Ptx.Ast.Shared;
           mask = 0xDEAD;
           addrs = Array.init ws (fun i -> i * 8);
           values = Array.init ws (fun i -> Int64.of_int i);
           width = 4;
         });
    Record.of_event ~warp_size:ws
      (Simt.Event.Access
         {
           warp = 1;
           insn = 2;
           kind = Simt.Event.Atomic Ptx.Ast.A_cas;
           space = Ptx.Ast.Global;
           mask = 0x1;
           addrs = Array.make ws 0;
           values = Array.make ws 0L;
           width = 8;
         });
    Record.of_event ~warp_size:ws
      (Simt.Event.Branch_if { warp = 0; insn = 5; then_mask = 0xF0; else_mask = 0xF });
    Record.of_event ~warp_size:ws (Simt.Event.Branch_else { warp = 2; mask = 0x3 });
    Record.of_event ~warp_size:ws (Simt.Event.Branch_fi { warp = 2; mask = 0xFF });
    Record.of_event ~warp_size:ws (Simt.Event.Barrier { block = 7 });
    Record.of_event ~warp_size:ws
      (Simt.Event.Barrier_divergence { warp = 4; insn = 9; mask = 0x1; expected = 0xF });
  ]

let test_record_wire_size () =
  Alcotest.(check int) "paper wire size" 272 Record.wire_size;
  List.iter
    (fun r ->
      match r with
      | Some r ->
          Alcotest.(check int) "serialized size" 272
            (Bytes.length (Record.to_bytes r))
      | None -> Alcotest.fail "event should produce a record")
    sample_records

let test_record_roundtrip () =
  List.iter
    (fun r ->
      match r with
      | Some r ->
          let r' =
            Record.of_bytes ~values:r.Record.values ~warp_size:ws
              (Record.to_bytes r)
          in
          Alcotest.(check bool) "roundtrip" true (r = r')
      | None -> Alcotest.fail "expected a record")
    sample_records

let test_record_fence_elided () =
  Alcotest.(check bool) "fences produce no record" true
    (Record.of_event ~warp_size:ws
       (Simt.Event.Fence { warp = 0; insn = 1; scope = Ptx.Ast.Gl; mask = 1 })
    = None)

let test_record_event_roundtrip () =
  List.iter
    (fun r ->
      match r with
      | Some r ->
          let ev = Record.to_event r in
          let r2 = Record.of_event ~warp_size:ws ev in
          Alcotest.(check bool) "event roundtrip" true (Some r = r2)
      | None -> ())
    sample_records

(* ---- Queue ----------------------------------------------------------- *)

let payload i =
  let b = Bytes.make Record.wire_size '\000' in
  Bytes.set_uint8 b 0 1;
  Bytes.set_int32_le b 8 (Int32.of_int i);
  b

let test_queue_fifo () =
  let q = Queue.create ~capacity:8 in
  for i = 0 to 5 do
    Alcotest.(check bool) "push" true (Queue.try_push q (payload i))
  done;
  Alcotest.(check int) "length" 6 (Queue.length q);
  for i = 0 to 5 do
    match Queue.pop q with
    | Some b ->
        Alcotest.(check int32)
          (Printf.sprintf "fifo %d" i)
          (Int32.of_int i) (Bytes.get_int32_le b 8)
    | None -> Alcotest.fail "pop failed"
  done;
  Alcotest.(check bool) "empty" true (Queue.pop q = None)

let test_queue_full () =
  let q = Queue.create ~capacity:4 in
  for i = 0 to 3 do
    Alcotest.(check bool) "fills" true (Queue.try_push q (payload i))
  done;
  Alcotest.(check bool) "rejects when full" false (Queue.try_push q (payload 4));
  ignore (Queue.pop q);
  Alcotest.(check bool) "space after pop" true (Queue.try_push q (payload 4));
  Alcotest.(check int) "wraparound accounting" 5 (Queue.pushed q);
  Alcotest.(check int) "high watermark" 4 (Queue.high_watermark q)

let test_queue_domains () =
  (* one producer domain, one consumer domain, 10k records *)
  let q = Queue.create ~capacity:64 in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          while not (Queue.try_push q (payload i)) do
            Domain.cpu_relax ()
          done
        done)
  in
  let seen = ref 0 in
  let in_order = ref true in
  while !seen < n do
    match Queue.pop q with
    | Some b ->
        let v = Int32.to_int (Bytes.get_int32_le b 8) in
        if v <> !seen then in_order := false;
        incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "all records in order across domains" true !in_order

(* ---- Pipeline -------------------------------------------------------- *)

let race_fingerprint report =
  Report.errors report
  |> List.filter_map (function
       | Report.Race r ->
           Some (r.Report.loc, r.Report.prev_tid, r.Report.cur_tid)
       | Report.Barrier_divergence _ -> None)
  |> List.sort_uniq Stdlib.compare

let single_queue_config =
  {
    Pipeline.default_config with
    queues = 1;
    detector = { Barracuda.Detector.default_config with max_reports = 100000 };
  }

(* The queue transport must be transparent: a detector fed the exact
   event stream the pipeline forwards must agree with the detector fed
   through records and a single queue.  (Comparing against a separate
   native run would be too strong: instrumentation changes warp
   interleaving, and FastTrack-style detection is schedule-sensitive.) *)
let prop_pipeline_matches_teed_detector =
  QCheck2.Test.make
    ~name:"single-queue pipeline equals a detector fed the same events"
    ~count:150 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let m = Simt.Machine.create ~layout:Gen.layout () in
      let args = Gen.setup m in
      let config =
        { Barracuda.Detector.default_config with max_reports = 100000 }
      in
      let direct = Barracuda.Detector.create ~config ~layout:Gen.layout k in
      let pr =
        Pipeline.run
          ~config:{ single_queue_config with prune = false }
          ~tee:(Barracuda.Detector.feed direct) ~machine:m k args
      in
      race_fingerprint (Barracuda.Detector.report direct)
      = race_fingerprint (Pipeline.report pr))

(* Weaker cross-run property that survives schedule perturbation: a
   race-free program stays race-free through the full pipeline. *)
let prop_pipeline_no_false_positives =
  QCheck2.Test.make
    ~name:"pipeline never invents races on programs the detector clears"
    ~count:100 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let k = Gen.kernel_of_program prog in
      let m1 = Simt.Machine.create ~layout:Gen.layout () in
      let args1 = Gen.setup m1 in
      let det, _ = Barracuda.Detector.run ~machine:m1 k args1 in
      if Report.has_race (Barracuda.Detector.report det) then
        QCheck2.assume_fail ()
      else begin
        let m2 = Simt.Machine.create ~layout:Gen.layout () in
        let args2 = Gen.setup m2 in
        let pr = Pipeline.run ~config:single_queue_config ~machine:m2 k args2 in
        not (Report.has_race (Pipeline.report pr))
      end)

let test_pipeline_backpressure () =
  (* a tiny queue forces producer stalls but must not lose records *)
  let prog = [ Gen.Global_store (0, Gen.Lane_dependent); Gen.Global_load 0 ] in
  let k = Gen.kernel_of_program prog in
  let m = Simt.Machine.create ~layout:Gen.layout () in
  let args = Gen.setup m in
  let r =
    Pipeline.run
      ~config:{ single_queue_config with queue_capacity = 2 }
      ~machine:m k args
  in
  Alcotest.(check bool) "records flowed" true
    (r.Pipeline.queue_stats.Pipeline.records > 0);
  Alcotest.(check bool) "race still found" true
    (Report.has_race (Pipeline.report r))

let test_pipeline_instrumented_execution_correct () =
  (* the instrumented kernel must compute the same results *)
  let prog = [ Gen.Store_own_slot ] in
  let k = Gen.kernel_of_program prog in
  let m1 = Simt.Machine.create ~layout:Gen.layout () in
  let args1 = Gen.setup m1 in
  let _ = Simt.Machine.launch m1 k args1 in
  let m2 = Simt.Machine.create ~layout:Gen.layout () in
  let args2 = Gen.setup m2 in
  let _ = Pipeline.run ~machine:m2 k args2 in
  let base1 = Int64.to_int args1.(0) and base2 = Int64.to_int args2.(0) in
  let total = Vclock.Layout.total_threads Gen.layout in
  let own_base = 4 * (Gen.words + Gen.sync_words) in
  for t = 0 to total - 1 do
    let addr1 = base1 + own_base + (4 * t) in
    let addr2 = base2 + own_base + (4 * t) in
    Alcotest.(check int64)
      (Printf.sprintf "slot %d" t)
      (Simt.Machine.peek m1 ~addr:addr1 ~width:4)
      (Simt.Machine.peek m2 ~addr:addr2 ~width:4)
  done

let suite =
  [
    Alcotest.test_case "record wire size" `Quick test_record_wire_size;
    Alcotest.test_case "record bytes roundtrip" `Quick test_record_roundtrip;
    Alcotest.test_case "record fence elided" `Quick test_record_fence_elided;
    Alcotest.test_case "record event roundtrip" `Quick test_record_event_roundtrip;
    Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
    Alcotest.test_case "queue full/wrap" `Quick test_queue_full;
    Alcotest.test_case "queue across domains" `Quick test_queue_domains;
    Alcotest.test_case "pipeline backpressure" `Quick test_pipeline_backpressure;
    Alcotest.test_case "pipeline preserves results" `Quick
      test_pipeline_instrumented_execution_correct;
  ]
  @ List.map Gen.to_alcotest
      [ prop_pipeline_matches_teed_detector; prop_pipeline_no_false_positives ]
