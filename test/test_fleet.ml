(* Fleet mode: the resumable campaign journal (schema versioning,
   atomic checkpoints, kill-and-resume determinism) and the background
   campaign daemon (duty cycle, yielding to paying work, resume across
   restarts). *)

module Journal = Campaign.Journal
module Daemon = Campaign.Daemon

let tmp_dir name =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "barracuda-fleet-%d-%s" (Unix.getpid ()) name)
  in
  let file = Journal.path ~dir in
  (try Sys.remove file with Sys_error _ -> ());
  (try Sys.remove (file ^ ".tmp") with Sys_error _ -> ());
  dir

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* ---- journal format ---------------------------------------------- *)

let test_journal_roundtrip () =
  let dir = tmp_dir "roundtrip" in
  let j = Journal.create ~seed:7 ~cases:3 ~trials:2 in
  Alcotest.(check int) "total trials" (3 * 4 * 2) (Journal.total j);
  ignore (Daemon.step j ~n:5);
  Journal.save ~dir j;
  match Journal.load ~dir with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok j' ->
      Alcotest.(check int) "cursor survives" 5 j'.Journal.j_cursor;
      Alcotest.(check int) "batches survive" 1 j'.Journal.j_batches;
      Alcotest.(check string) "report identical"
        (Journal.report_json j) (Journal.report_json j')

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_journal_version_rejected () =
  let dir = tmp_dir "version" in
  let j = Journal.create ~seed:1 ~cases:1 ~trials:1 in
  Journal.save ~dir j;
  let path = Journal.path ~dir in
  (* A future format: only the version stamp is understood. *)
  write_file path
    (Printf.sprintf "{\"schema_version\":%d}\n" (Journal.schema_version + 1));
  match Journal.load ~dir with
  | Ok _ -> Alcotest.fail "mismatched schema version must be rejected"
  | Error e ->
      (* Loud and versioned: the message names both versions. *)
      Alcotest.(check bool) ("names the file version: " ^ e) true
        (contains
           ~needle:
             (Printf.sprintf "version %d" (Journal.schema_version + 1))
           e);
      Alcotest.(check bool) ("names the expected version: " ^ e) true
        (contains
           ~needle:(Printf.sprintf "expected %d" Journal.schema_version)
           e)

let test_campaign_report_carries_version () =
  let report =
    Campaign.run ~config:{ Campaign.seed = 3; quick = true; trials = 1 } ()
  in
  let line = Campaign.to_json report in
  let prefix =
    Printf.sprintf "{\"schema_version\":%d," Journal.schema_version
  in
  Alcotest.(check bool) "faults --json report starts with the version" true
    (String.length line >= String.length prefix
    && String.sub line 0 (String.length prefix) = prefix)

(* ---- kill-and-resume determinism --------------------------------- *)

(* A campaign interrupted at ANY trial boundary and resumed from its
   journal must produce bitwise the same merged report as an
   uninterrupted run: trials are pure functions of the seed tuple and
   the journal is just a cursor, so no trial can be lost or
   double-counted.  Kill points are randomized (seeded) and the resume
   goes through an actual save/load cycle — the same path a crashed
   process takes. *)
let test_kill_and_resume_determinism () =
  let seed = 7 and cases = 3 and trials = 2 in
  let reference =
    let j = Journal.create ~seed ~cases ~trials in
    let n = Journal.total j in
    ignore (Daemon.step j ~n);
    Journal.report_json j
  in
  let total = cases * 4 * trials in
  let rng = Random.State.make [| 0xF1EE7 |] in
  for _ = 1 to 3 do
    let kill_at = 1 + Random.State.int rng (total - 1) in
    let dir = tmp_dir (Printf.sprintf "kill%d" kill_at) in
    (* run to the kill point in small batches, checkpointing like the
       daemon does *)
    let j = Journal.create ~seed ~cases ~trials in
    Journal.save ~dir j;
    let rec drive () =
      if j.Journal.j_cursor < kill_at then begin
        ignore (Daemon.step j ~n:(min 3 (kill_at - j.Journal.j_cursor)));
        Journal.save ~dir j;
        drive ()
      end
    in
    drive ();
    (* "crash": drop the in-memory state, resume from disk *)
    match Journal.load ~dir with
    | Error e -> Alcotest.failf "resume load: %s" e
    | Ok resumed ->
        Alcotest.(check int)
          (Printf.sprintf "cursor at kill point %d" kill_at)
          kill_at resumed.Journal.j_cursor;
        ignore (Daemon.step resumed ~n:(Journal.total resumed));
        Alcotest.(check string)
          (Printf.sprintf "killed at %d/%d, resumed report is bitwise \
                           identical" kill_at total)
          reference
          (Journal.report_json resumed)
  done

(* ---- background daemon ------------------------------------------- *)

let rec wait_until ?(timeout_s = 20.0) f =
  if f () then true
  else if timeout_s <= 0.0 then false
  else begin
    Thread.delay 0.02;
    wait_until ~timeout_s:(timeout_s -. 0.02) f
  end

let daemon_config ~load =
  {
    Daemon.seed = 11;
    cases = 2;
    trials = 1;
    batch = 3;
    duty = 1.0;  (* tests want speed, not politeness *)
    load;
  }

let test_daemon_yields_to_paying_work () =
  let dir = tmp_dir "yield" in
  match Daemon.start ~config:(daemon_config ~load:(fun () -> 1)) ~dir () with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok d ->
      (* With paying work permanently present the sweep must not move. *)
      let paused =
        wait_until (fun () -> (Daemon.status d).Service.Protocol.ca_paused)
      in
      Thread.delay 0.1;
      let s = Daemon.status d in
      Daemon.stop d;
      Alcotest.(check bool) "reports paused" true paused;
      Alcotest.(check int) "no trials while loaded" 0
        s.Service.Protocol.ca_trials

let test_daemon_completes_and_resumes () =
  let dir = tmp_dir "complete" in
  (* Phase 1: run a few batches, then stop mid-campaign. *)
  (match Daemon.start ~config:(daemon_config ~load:(fun () -> 0)) ~dir () with
  | Error e -> Alcotest.failf "start: %s" e
  | Ok d ->
      let progressed =
        wait_until (fun () -> (Daemon.status d).Service.Protocol.ca_trials > 0)
      in
      Daemon.stop d;
      Alcotest.(check bool) "made progress" true progressed);
  let mid =
    match Journal.load ~dir with
    | Ok j -> j.Journal.j_cursor
    | Error e -> Alcotest.failf "mid load: %s" e
  in
  (* Phase 2: a fresh daemon resumes the same journal and finishes. *)
  match Daemon.start ~config:(daemon_config ~load:(fun () -> 0)) ~dir () with
  | Error e -> Alcotest.failf "restart: %s" e
  | Ok d ->
      let finished =
        wait_until (fun () ->
            let s = Daemon.status d in
            s.Service.Protocol.ca_trials = s.Service.Protocol.ca_total)
      in
      let s = Daemon.status d in
      Daemon.stop d;
      Alcotest.(check bool) "completed after resume" true finished;
      Alcotest.(check bool) "resumed, not restarted" true
        (s.Service.Protocol.ca_trials >= mid);
      Alcotest.(check int) "zero silent-wrong" 0
        s.Service.Protocol.ca_silent_wrong;
      (* The resumed-through-restart report matches an uninterrupted
         in-memory run of the same campaign. *)
      let reference =
        let j = Journal.create ~seed:11 ~cases:2 ~trials:1 in
        ignore (Daemon.step j ~n:(Journal.total j));
        Journal.report_json j
      in
      (match Journal.load ~dir with
      | Ok j ->
          Alcotest.(check string) "report matches uninterrupted run"
            reference (Journal.report_json j);
          Alcotest.(check bool) "journal verdict ok" true (Journal.ok j)
      | Error e -> Alcotest.failf "final load: %s" e)

let suite =
  [
    Alcotest.test_case "journal save/load roundtrip" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal schema version rejected" `Quick
      test_journal_version_rejected;
    Alcotest.test_case "faults report carries schema version" `Quick
      test_campaign_report_carries_version;
    Alcotest.test_case "kill-and-resume determinism" `Quick
      test_kill_and_resume_determinism;
    Alcotest.test_case "daemon yields to paying work" `Quick
      test_daemon_yields_to_paying_work;
    Alcotest.test_case "daemon completes and resumes" `Quick
      test_daemon_completes_and_resumes;
  ]
