(* The sharded detection engine (lib/shard): broadcast-everything
   transport with partitioned shadow checks.  The load-bearing claim is
   bitwise verdict parity — for every bug-suite case and every shard
   count, the merged sharded report must list exactly the races the
   serial pipeline lists, which in turn must agree with the reference
   semantics. *)

module Pipeline = Gpu_runtime.Pipeline
module SPipeline = Shard.Pipeline
module Report = Barracuda.Report

let shard_counts = [ 1; 2; 4; 7 ]

(* ---- race-set extraction (as in test_detector) ------------------- *)

type race_key = {
  loc : Gtrace.Loc.t;
  prev_tid : int;
  prev_kind : Report.access_kind;
  cur_tid : int;
  cur_kind : Report.access_kind;
}

let race_set report =
  Report.errors report
  |> List.filter_map (function
       | Report.Race r ->
           Some
             {
               loc = r.Report.loc;
               prev_tid = r.Report.prev_tid;
               prev_kind = r.Report.prev_kind;
               cur_tid = r.Report.cur_tid;
               cur_kind = r.Report.cur_kind;
             }
       | Report.Barrier_divergence _ -> None)
  |> List.sort_uniq Stdlib.compare

(* Parity must hold on the full stream with no report cap in the way:
   a shard hitting [max_reports] would under-report legitimately. *)
let detector_config =
  { Barracuda.Detector.default_config with max_reports = 100000 }

let serial_report (c : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup m in
  let config =
    {
      Pipeline.default_config with
      queues = 1;
      prune = false;
      detector = detector_config;
    }
  in
  let r = Pipeline.run ~config ~machine:m c.Bugsuite.Case.kernel args in
  Pipeline.report r

let sharded_result ?fault ~shards (c : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup m in
  let config =
    {
      SPipeline.default_config with
      SPipeline.shards;
      prune = false;
      detector = detector_config;
      fault;
    }
  in
  SPipeline.run_sharded ~config ~machine:m c.Bugsuite.Case.kernel args

let reference_racy (c : Bugsuite.Case.t) =
  let m = Simt.Machine.create ~layout:c.Bugsuite.Case.layout () in
  let args = c.Bugsuite.Case.setup m in
  let ops, _ =
    Gtrace.Infer.run ~layout:c.Bugsuite.Case.layout m c.Bugsuite.Case.kernel
      args
  in
  let d =
    Barracuda.Reference.create ~max_reports:100000
      ~layout:c.Bugsuite.Case.layout ()
  in
  Barracuda.Reference.run d ops;
  Report.has_race (Barracuda.Reference.report d)

(* ---- full-bugsuite parity at every shard count ------------------- *)

let test_bugsuite_parity () =
  List.iter
    (fun (c : Bugsuite.Case.t) ->
      let expected = reference_racy c in
      let serial = serial_report c in
      let serial_races = race_set serial in
      Alcotest.(check bool)
        (c.Bugsuite.Case.name ^ ": serial pipeline matches reference")
        expected
        (Report.has_race serial);
      List.iter
        (fun shards ->
          let r = sharded_result ~shards c in
          let merged = r.SPipeline.report in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %d shards: verdict matches reference"
               c.Bugsuite.Case.name shards)
            expected (Report.has_race merged);
          if race_set merged <> serial_races then
            Alcotest.failf "%s @ %d shards: race set differs from serial"
              c.Bugsuite.Case.name shards)
        shard_counts)
    Bugsuite.Cases.all

(* ---- the router is a true partition ------------------------------ *)

let gen_cell =
  QCheck2.Gen.(
    let* shards = int_range 1 16 in
    let* range_log2 = int_range 0 12 in
    let* space =
      oneofl [ Ptx.Ast.Global; Ptx.Ast.Shared; Ptx.Ast.Local; Ptx.Ast.Param ]
    in
    let* region = int_range 0 64 in
    let* index = int_range 0 (1 lsl 20) in
    return (shards, range_log2, space, region, index))

let prop_router_partition =
  QCheck2.Test.make ~name:"every shadow cell has exactly one owner"
    ~count:2000
    ~print:(fun (shards, rl, _, region, index) ->
      Printf.sprintf "shards=%d range_log2=%d region=%d index=%d" shards rl
        region index)
    gen_cell
    (fun (shards, range_log2, space, region, index) ->
      let router = Shard.Router.make ~range_log2 ~shards () in
      let owner = Shard.Router.owner router ~space ~region ~index in
      let owners =
        List.init shards (fun s ->
            if Shard.Router.owns router ~shard:s space region index then [ s ]
            else [])
        |> List.concat
      in
      owner >= 0 && owner < shards && owners = [ owner ])

let prop_router_range_locality =
  QCheck2.Test.make
    ~name:"cells within one range land on the same shard" ~count:500
    ~print:(fun (shards, rl, _, region, index) ->
      Printf.sprintf "shards=%d range_log2=%d region=%d index=%d" shards rl
        region index)
    gen_cell
    (fun (shards, range_log2, space, region, index) ->
      let router = Shard.Router.make ~range_log2 ~shards () in
      let range = 1 lsl range_log2 in
      let base = index land lnot (range - 1) in
      let o = Shard.Router.owner router ~space ~region ~index:base in
      List.for_all
        (fun d ->
          Shard.Router.owner router ~space ~region ~index:(base + d) = o)
        (List.filter (fun d -> d < range) [ 0; 1; range - 1 ]))

(* ---- exactly-once, in-order broadcast delivery ------------------- *)

let test_broadcast_delivery () =
  let w = Workloads.Registry.find "backprop" in
  let m = Workloads.Workload.machine w in
  let args = w.Workloads.Workload.setup m in
  let config =
    {
      SPipeline.default_config with
      SPipeline.shards = 4;
      prune = false;
      detector = detector_config;
    }
  in
  let r =
    SPipeline.run_sharded ~config ~machine:m w.Workloads.Workload.kernel args
  in
  let stream = r.SPipeline.queue_stats.Pipeline.records in
  Array.iteri
    (fun i det ->
      let s = Barracuda.Detector.stats det in
      Alcotest.(check int)
        (Printf.sprintf "shard %d consumed the full stream" i)
        stream s.Barracuda.Detector.records_processed)
    r.SPipeline.detectors;
  let integ = Report.integrity r.SPipeline.report in
  Alcotest.(check bool)
    "no integrity anomalies on any shard" true
    (integ.Report.corrupt = 0 && integ.Report.gaps = 0
    && integ.Report.stale = 0 && integ.Report.desync = 0);
  Alcotest.(check bool) "verdict not degraded" false
    (Report.degraded r.SPipeline.report)

(* ---- merged reports are deterministic ---------------------------- *)

let test_merge_deterministic () =
  let c =
    List.find
      (fun (c : Bugsuite.Case.t) -> c.Bugsuite.Case.verdict = Bugsuite.Case.Racy)
      Bugsuite.Cases.all
  in
  let errors () =
    Report.errors (sharded_result ~shards:4 c).SPipeline.report
  in
  let a = errors () and b = errors () in
  Alcotest.(check bool) "identical error lists across runs" true (a = b)

(* ---- a doomed shard fails the job loudly ------------------------- *)

let test_shard_crash_is_loud () =
  let w = Workloads.Registry.find "backprop" in
  let m = Workloads.Workload.machine w in
  let args = w.Workloads.Workload.setup m in
  let plan =
    Fault.Plan.make
      {
        Fault.Plan.none with
        Fault.Plan.seed = 7;
        shard_crash_shards = [ 1 ];
        shard_crash_after = 3;
      }
  in
  let config =
    {
      SPipeline.default_config with
      SPipeline.shards = 3;
      fault = Some plan;
    }
  in
  match
    SPipeline.run_sharded ~config ~machine:m w.Workloads.Workload.kernel args
  with
  | _ -> Alcotest.fail "sharded run completed despite a dead shard"
  | exception Shard.Engine.Shard_crashed i ->
      Alcotest.(check int) "the doomed shard is named" 1 i;
      Alcotest.(check int) "the injection was accounted" 1
        (Fault.Plan.injected plan).Fault.Plan.shard_crashes

let suite =
  [
    Alcotest.test_case "bugsuite parity at 1/2/4/7 shards" `Quick
      test_bugsuite_parity;
    Alcotest.test_case "broadcast delivers exactly once per shard" `Quick
      test_broadcast_delivery;
    Alcotest.test_case "merge is deterministic" `Quick test_merge_deterministic;
    Alcotest.test_case "shard crash fails the job loudly" `Quick
      test_shard_crash_is_loud;
    Gen.to_alcotest prop_router_partition;
    Gen.to_alcotest prop_router_range_locality;
  ]
