(* Trace layer: role inference, event->op translation, feasibility. *)

module Ast = Ptx.Ast
module B = Ptx.Builder
module Roles = Gtrace.Roles
module Op = Gtrace.Op

let parse s = Ptx.Parser.kernel_of_string s

(* ---- Roles --------------------------------------------------------- *)

let role_at k i = (Roles.classify k).(i)

let test_roles_release_store () =
  let k =
    parse
      ".entry k (.param .u64 a) { membar.gl; st.global.u32 [a], 1; ret; }"
  in
  Alcotest.(check bool) "fence+store is a global release" true
    (Roles.equal (role_at k 1) (Roles.Release Op.Global_scope))

let test_roles_acquire_load () =
  let k =
    parse
      ".entry k (.param .u64 a) { ld.global.u32 %r1, [a]; membar.cta; ret; }"
  in
  Alcotest.(check bool) "load+fence is a block acquire" true
    (Roles.equal (role_at k 0) (Roles.Acquire Op.Block))

let test_roles_plain_when_separated () =
  let k =
    parse
      ".entry k (.param .u64 a) { membar.gl; mov.u32 %r1, 0; st.global.u32 [a], 1; ret; }"
  in
  Alcotest.(check bool) "separated store stays plain" true
    (Roles.equal (role_at k 2) Roles.Plain)

let test_roles_label_breaks_pairing () =
  let k =
    parse
      ".entry k (.param .u64 a) { membar.gl;\nL1: st.global.u32 [a], 1; ret; }"
  in
  Alcotest.(check bool) "label between fence and store breaks the release"
    true
    (Roles.equal (role_at k 1) Roles.Plain)

let test_roles_sandwiched_atomic () =
  let k =
    parse
      ".entry k (.param .u64 a) { membar.cta; atom.global.add.u32 %r1, [a], 1; membar.gl; ret; }"
  in
  Alcotest.(check bool) "sandwiched atomic is acq-rel at the wider scope" true
    (Roles.equal (role_at k 1) (Roles.Acquire_release Op.Global_scope))

let test_roles_cas_spin_loop () =
  (* the compiled lock idiom: cas; setp; @bra; membar *)
  let k =
    parse
      {|.entry k (.param .u64 a) {
L: atom.global.cas.b32 %r1, [a], 0, 1;
   setp.ne.u32 %p1, %r1, 0;
   @%p1 bra L;
   membar.gl;
   ret; }|}
  in
  Alcotest.(check bool) "spin-loop cas is an acquire" true
    (Roles.equal (role_at k 0) (Roles.Acquire Op.Global_scope))

let test_roles_exch_release () =
  let k =
    parse
      ".entry k (.param .u64 a) { membar.gl; atom.global.exch.b32 %r1, [a], 0; ret; }"
  in
  Alcotest.(check bool) "fence+exch is a release" true
    (Roles.equal (role_at k 1) (Roles.Release Op.Global_scope))

let test_roles_bare_atomic_plain () =
  let k =
    parse ".entry k (.param .u64 a) { atom.global.add.u32 %r1, [a], 1; ret; }"
  in
  Alcotest.(check bool) "bare atomic stays plain" true
    (Roles.equal (role_at k 0) Roles.Plain)

let test_roles_local_ignored () =
  let k =
    parse ".entry k (.param .u64 a) { membar.gl; st.local.u32 [a], 1; ret; }"
  in
  Alcotest.(check bool) "local store never a release" true
    (Roles.equal (role_at k 1) Roles.Plain)

(* ---- Event -> Op translation --------------------------------------- *)

let trace_of = Gen.trace_of_program

let test_infer_bytes_per_access () =
  (* one 4-byte store by 4 active lanes in block 0 -> 16 Wr ops + endi *)
  let ops, _ =
    trace_of [ Gen.If_block [ Gen.If_tid_lt (4, [ Gen.Global_store (0, Gen.Const 1) ], []) ] ]
  in
  let wr =
    List.filter (function Op.Wr _ -> true | _ -> false) ops
  in
  Alcotest.(check int) "4 lanes x 4 bytes" 16 (List.length wr)

let test_infer_endi_follows_access () =
  let ops, _ = trace_of [ Gen.Global_load 0 ] in
  let rec check = function
    | [] -> ()
    | Op.Rd _ :: rest ->
        let rec skip = function
          | Op.Rd _ :: r -> skip r
          | Op.Endi _ :: r -> check r
          | _ -> Alcotest.fail "reads not followed by endi"
        in
        skip rest
    | _ :: rest -> check rest
  in
  check ops

let test_infer_barrier_op () =
  let ops, _ = trace_of [ Gen.Barrier ] in
  Alcotest.(check int) "one bar per block" 2
    (List.length (List.filter (function Op.Bar _ -> true | _ -> false) ops))

let test_infer_branch_ops_balanced () =
  let ops, _ =
    trace_of
      [ Gen.If_parity ([ Gen.Global_load 0 ], [ Gen.Global_load 1 ]) ]
  in
  let count p = List.length (List.filter p ops) in
  let ifs = count (function Op.If _ -> true | _ -> false) in
  let pops =
    count (function Op.Else _ | Op.Fi _ -> true | _ -> false)
  in
  Alcotest.(check bool) "divergence seen" true (ifs > 0);
  Alcotest.(check int) "each if has two pops" (2 * ifs) pops

let prop_traces_feasible =
  QCheck2.Test.make ~name:"inferred traces are feasible" ~count:200
    ~print:Gen.print_program Gen.gen_program (fun prog ->
      let ops, _ = trace_of prog in
      match Gtrace.Feasible.check ~layout:Gen.layout ops with
      | Ok () -> true
      | Error v ->
          QCheck2.Test.fail_reportf "infeasible: %a"
            Gtrace.Feasible.pp_violation v)

(* ---- Feasibility checker rejects bad traces ------------------------ *)

let loc = Gtrace.Loc.global 0

let test_feasible_rejects_inactive_mem_op () =
  (* divergence puts lanes 0-1 on the then path; a memory op by lane 2
     is infeasible *)
  let tid_lane2 = 2 in
  let ops =
    [
      Op.If { warp = 0; then_mask = 0x3; else_mask = 0xC };
      Op.Wr { tid = tid_lane2; loc; value = 0L };
    ]
  in
  Alcotest.(check bool) "rejected" true
    (Gtrace.Feasible.check ~layout:Gen.layout ops |> Result.is_error)

let test_feasible_rejects_unbalanced_fi () =
  let ops = [ Op.Fi { warp = 0; mask = 0xF } ] in
  Alcotest.(check bool) "rejected" true
    (Gtrace.Feasible.check ~layout:Gen.layout ops |> Result.is_error)

let test_feasible_rejects_pending_mem_at_if () =
  let ops =
    [
      Op.Wr { tid = 0; loc; value = 0L };
      Op.If { warp = 0; then_mask = 0x3; else_mask = 0xC };
    ]
  in
  Alcotest.(check bool) "rejected" true
    (Gtrace.Feasible.check ~layout:Gen.layout ops |> Result.is_error)

let test_feasible_accepts_simple () =
  let ops =
    [
      Op.Wr { tid = 0; loc; value = 0L };
      Op.Endi { warp = 0; mask = 0x1 };
      Op.Bar { block = 0 };
    ]
  in
  Alcotest.(check bool) "accepted" true
    (Gtrace.Feasible.check ~layout:Gen.layout ops |> Result.is_ok)

(* ---- Serialization ------------------------------------------------- *)

let prop_trace_roundtrip =
  QCheck2.Test.make ~name:"traces roundtrip through serialization"
    ~count:150 ~print:Gen.print_program Gen.gen_program (fun prog ->
      let ops, _ = trace_of prog in
      let text = Gtrace.Serialize.to_string ~layout:Gen.layout ops in
      let layout', ops' = Gtrace.Serialize.of_string text in
      layout' = Gen.layout && ops = ops')

let test_serialize_rejects_garbage () =
  let expect_error s =
    match Gtrace.Serialize.of_string s with
    | exception Gtrace.Serialize.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" s
  in
  expect_error "not a trace";
  expect_error "# barracuda-trace v1 warp_size=4 threads_per_block=8 blocks=2\nbogus op";
  expect_error "# barracuda-trace v1 warp_size=4 threads_per_block=8 blocks=2\nwr tX g:0x0 =1"

let test_serialize_replay_equal_verdict () =
  let prog = [ Gen.Global_store (0, Gen.Lane_dependent); Gen.Barrier; Gen.Global_load 0 ] in
  let ops, _ = trace_of prog in
  let text = Gtrace.Serialize.to_string ~layout:Gen.layout ops in
  let layout', ops' = Gtrace.Serialize.of_string text in
  let d1 = Barracuda.Reference.create ~layout:Gen.layout () in
  Barracuda.Reference.run d1 ops;
  let d2 = Barracuda.Reference.create ~layout:layout' () in
  Barracuda.Reference.run d2 ops';
  Alcotest.(check int) "same race count after replay"
    (Barracuda.Report.race_count (Barracuda.Reference.report d1))
    (Barracuda.Report.race_count (Barracuda.Reference.report d2))

let suite =
  [
    Alcotest.test_case "roles: release store" `Quick test_roles_release_store;
    Alcotest.test_case "roles: acquire load" `Quick test_roles_acquire_load;
    Alcotest.test_case "roles: separation breaks pairing" `Quick
      test_roles_plain_when_separated;
    Alcotest.test_case "roles: label breaks pairing" `Quick
      test_roles_label_breaks_pairing;
    Alcotest.test_case "roles: sandwiched atomic" `Quick
      test_roles_sandwiched_atomic;
    Alcotest.test_case "roles: cas spin loop" `Quick test_roles_cas_spin_loop;
    Alcotest.test_case "roles: exch release" `Quick test_roles_exch_release;
    Alcotest.test_case "roles: bare atomic plain" `Quick
      test_roles_bare_atomic_plain;
    Alcotest.test_case "roles: local ignored" `Quick test_roles_local_ignored;
    Alcotest.test_case "infer: byte expansion" `Quick test_infer_bytes_per_access;
    Alcotest.test_case "infer: endi placement" `Quick test_infer_endi_follows_access;
    Alcotest.test_case "infer: barrier ops" `Quick test_infer_barrier_op;
    Alcotest.test_case "infer: branch ops balanced" `Quick
      test_infer_branch_ops_balanced;
    Alcotest.test_case "feasible: inactive mem op" `Quick
      test_feasible_rejects_inactive_mem_op;
    Alcotest.test_case "feasible: unbalanced fi" `Quick
      test_feasible_rejects_unbalanced_fi;
    Alcotest.test_case "feasible: pending mem at if" `Quick
      test_feasible_rejects_pending_mem_at_if;
    Alcotest.test_case "feasible: accepts simple" `Quick test_feasible_accepts_simple;
    Alcotest.test_case "serialize rejects garbage" `Quick
      test_serialize_rejects_garbage;
    Alcotest.test_case "serialize replay verdict" `Quick
      test_serialize_replay_equal_verdict;
  ]
  @ List.map Gen.to_alcotest
      [ prop_traces_feasible; prop_trace_roundtrip ]
